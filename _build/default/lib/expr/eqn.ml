type origin =
  | Dipole of string
  | Kcl of string
  | Kvl of int
  | Derived
  | Explicit

type t = { id : int; lhs : Expr.t; rhs : Expr.t; origin : origin }

let counter = ref 0

let make origin ~lhs ~rhs =
  incr counter;
  { id = !counter; lhs; rhs; origin }

let residual eq = Expr.(eq.lhs - eq.rhs)

let pp_origin ppf = function
  | Dipole d -> Format.fprintf ppf "dipole[%s]" d
  | Kcl n -> Format.fprintf ppf "KCL[%s]" n
  | Kvl i -> Format.fprintf ppf "KVL[%d]" i
  | Derived -> Format.pp_print_string ppf "derived"
  | Explicit -> Format.pp_print_string ppf "explicit"

let pp ppf eq =
  Format.fprintf ppf "%a = %a  (%a)" Expr.pp eq.lhs Expr.pp eq.rhs pp_origin
    eq.origin

let to_string eq = Format.asprintf "%a" pp eq

type pseudo = Cur of Expr.var | Der of Expr.var

let compare_pseudo a b =
  match (a, b) with
  | Cur x, Cur y | Der x, Der y -> Expr.compare_var x y
  | Cur _, Der _ -> -1
  | Der _, Cur _ -> 1

let pseudo_name = function
  | Cur x -> Expr.var_name x
  | Der x -> Printf.sprintf "ddt(%s)" (Expr.var_name x)

let expr_of_pseudo = function
  | Cur x -> Expr.Var x
  | Der x -> Expr.Ddt (Expr.Var x)

module Pmap = Map.Make (struct
  type t = pseudo

  let compare = compare_pseudo
end)

let plinear_form e =
  let merge m1 m2 = Pmap.union (fun _ a b -> Some (a +. b)) m1 m2 in
  let scale_map k m = Pmap.map (fun c -> c *. k) m in
  let rec go e =
    match e with
    | Expr.Const c -> Some (Pmap.empty, c)
    | Expr.Var x -> Some (Pmap.singleton (Cur x) 1.0, 0.0)
    | Expr.Neg a -> Option.map (fun (m, k) -> (scale_map (-1.0) m, -.k)) (go a)
    | Expr.Add (a, b) -> combine ( +. ) a b
    | Expr.Sub (a, b) -> (
        match (go a, go b) with
        | Some (m1, k1), Some (m2, k2) ->
            Some (merge m1 (scale_map (-1.0) m2), k1 -. k2)
        | _ -> None)
    | Expr.Mul (a, b) -> (
        match (go a, go b) with
        | Some (m1, k1), Some (m2, k2) ->
            if Pmap.is_empty m1 then Some (scale_map k1 m2, k1 *. k2)
            else if Pmap.is_empty m2 then Some (scale_map k2 m1, k1 *. k2)
            else None
        | _ -> None)
    | Expr.Div (a, b) -> (
        match (go a, go b) with
        | Some (m1, k1), Some (m2, k2) when Pmap.is_empty m2 && k2 <> 0.0 ->
            Some (scale_map (1.0 /. k2) m1, k1 /. k2)
        | _ -> None)
    | Expr.Ddt a -> (
        (* ddt is linear: distribute over the affine argument; the
           derivative of a constant vanishes. Nested derivatives are
           outside the linear view. *)
        match go a with
        | Some (m, _k) ->
            let ok = ref true in
            let m' =
              Pmap.fold
                (fun p c acc ->
                  match p with
                  | Cur x -> Pmap.add (Der x) c acc
                  | Der _ ->
                      ok := false;
                      acc)
                m Pmap.empty
            in
            if !ok then Some (m', 0.0) else None
        | None -> None)
    | Expr.Idt _ | Expr.App _ | Expr.Cond _ -> None
  and combine op a b =
    match (go a, go b) with
    | Some (m1, k1), Some (m2, k2) -> Some (merge m1 m2, op k1 k2)
    | _ -> None
  in
  match go e with
  | None -> None
  | Some (m, k) ->
      let items =
        Pmap.fold (fun p c acc -> if c = 0.0 then acc else (p, c) :: acc) m []
      in
      Some (List.rev items, k)

let of_plinear (items, k) =
  let term (p, c) =
    if c = 1.0 then expr_of_pseudo p
    else Expr.Mul (Expr.Const c, expr_of_pseudo p)
  in
  match items with
  | [] -> Expr.Const k
  | first :: rest ->
      let body =
        List.fold_left (fun acc it -> Expr.(acc + term it)) (term first) rest
      in
      if k = 0.0 then body else Expr.(body + Expr.Const k)

let unknowns eq =
  match plinear_form (residual eq) with
  | None -> []
  | Some (items, _) -> List.map fst items

let solve_for p eq =
  match plinear_form (residual eq) with
  | None -> None
  | Some (items, k) -> (
      match List.assoc_opt p (List.map (fun (q, c) -> (q, c)) items) with
      | None | Some 0.0 -> None
      | Some a ->
          (* residual = a*p + rest = 0  =>  p = -rest / a *)
          let rest =
            List.filter (fun (q, _) -> compare_pseudo q p <> 0) items
          in
          let scaled =
            (List.map (fun (q, c) -> (q, -.c /. a)) rest, -.k /. a)
          in
          Some (Expr.simplify (of_plinear scaled)))

let is_linear eq = plinear_form (residual eq) <> None

let eval_residual env eq = Expr.eval env (residual eq)
