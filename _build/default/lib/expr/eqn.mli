(** Equations over electrical quantities.

    An equation relates two expressions. Dipole (constitutive)
    equations come from devices, Kirchhoff equations from the network
    topology (paper §IV-B), and derived equations are the rearranged
    variants inserted by the enrichment step (Algorithm 1). *)

type origin =
  | Dipole of string  (** constitutive equation of the named device *)
  | Kcl of string  (** current law at the named node *)
  | Kvl of int  (** voltage law around fundamental loop [i] *)
  | Derived  (** produced by solving an equation for one of its terms *)
  | Explicit  (** signal-flow contribution written by the designer *)

type t = private {
  id : int;  (** unique id, assigned at creation *)
  lhs : Expr.t;
  rhs : Expr.t;
  origin : origin;
}

val make : origin -> lhs:Expr.t -> rhs:Expr.t -> t
(** Create an equation with a fresh id. *)

val residual : t -> Expr.t
(** [residual eq] is [lhs - rhs]; the equation states it is zero. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val pp_origin : Format.formatter -> origin -> unit

(** {1 Linear view}

    The abstraction methodology targets electrical {e linear} networks
    (§IV); derivatives are kept symbolic, so the linear view is over
    pseudo-variables: a quantity [x] and its derivative [ddt(x)] are
    independent unknowns until discretisation. *)

type pseudo =
  | Cur of Expr.var  (** the quantity itself *)
  | Der of Expr.var  (** its first time derivative *)

val compare_pseudo : pseudo -> pseudo -> int
val pseudo_name : pseudo -> string
val expr_of_pseudo : pseudo -> Expr.t

val plinear_form : Expr.t -> ((pseudo * float) list * float) option
(** Affine decomposition over pseudo-variables. [ddt] distributes over
    its (necessarily affine) argument; nested derivatives, [idt],
    conditionals and products of unknowns yield [None]. *)

val unknowns : t -> pseudo list
(** The pseudo-variables of the residual, when it is linear; [[]] when
    the equation is nonlinear. *)

val solve_for : pseudo -> t -> Expr.t option
(** [solve_for p eq] rearranges a linear equation to express [p] in
    terms of the remaining pseudo-variables, i.e. the [Solve] routine
    of Algorithm 1. Returns [None] if the equation is nonlinear in the
    sense of {!plinear_form}, does not mention [p], or mentions it with
    a vanishing coefficient. *)

val is_linear : t -> bool

val eval_residual : (Expr.var -> float) -> t -> float
(** Evaluate the residual under an environment; requires a
    derivative-free (already discretised) equation. *)
