(** APB-style memory-mapped bus with the platform peripherals.

    The paper's digital platform is "a MIPS-based CPU ..., a UART and
    the APB bus" (§V-B). Devices are attached at base addresses; the
    bus decodes word accesses from the CPU and counts transfers.
    Besides RAM and the UART, an ADC bridge exposes the analog output
    of interest to the software as a memory-mapped register. *)

type t

val create : unit -> t

type device = {
  base : int;
  size : int;  (** bytes *)
  read : int -> int;  (** offset (bytes) -> value *)
  write : int -> int -> unit;  (** offset, value *)
}

val attach : t -> name:string -> device -> unit
(** @raise Invalid_argument on an overlapping mapping. *)

val iss_bus : t -> Iss.bus
val transfers : t -> int

exception Bus_error of int
(** Raised on an access that decodes to no device. *)

(** {1 Peripherals} *)

module Ram : sig
  val attach : t -> base:int -> size_words:int -> unit

  val load : t -> base:int -> int array -> unit
  (** Copy a program image into RAM through the bus. *)
end

module Uart : sig
  type uart

  val attach : t -> base:int -> uart
  (** Register map: +0 write = transmit byte (low 8 bits); +4 read =
      line status (always 1: transmitter ready); +0 read = number of
      bytes transmitted so far. *)

  val output : uart -> string
  val tx_count : uart -> int
end

module Adc : sig
  type adc

  val attach : t -> base:int -> adc
  (** Register map: +0 read = latest sample in microvolts (signed,
      32-bit two's complement), reading it acknowledges a pending
      interrupt; +4 read = sample sequence number; +8 write = interrupt
      enable (bit 0). *)

  val set_sample : adc -> volts:float -> unit
  (** Latch a new sample; raises the interrupt line when enabled. *)

  val samples_pushed : adc -> int

  val irq_pending : adc -> bool
  (** Level of the ADC interrupt line (cleared by reading +0). *)
end
