type bus = { read32 : int -> int; write32 : int -> int -> unit }

type t = {
  bus : bus;
  regs : int array;  (* 32-bit values, stored masked *)
  mutable pc : int;
  mutable retired : int;
  mutable hi : int;
  mutable lo : int;
  mutable irq : bool;  (* external request line (level) *)
  mutable ie : bool;  (* interrupt enable *)
  mutable epc : int;
  mutable taken : int;
}

let interrupt_vector = 0x80

exception Decode_error of int * int

let mask32 v = v land 0xFFFFFFFF

let sign32 v =
  let v = mask32 v in
  if v land 0x80000000 <> 0 then v - 0x100000000 else v

let sign16 v =
  let v = v land 0xFFFF in
  if v land 0x8000 <> 0 then v - 0x10000 else v

let create ?(pc = 0) bus =
  {
    bus;
    regs = Array.make 32 0;
    pc;
    retired = 0;
    hi = 0;
    lo = 0;
    irq = false;
    ie = false;
    epc = 0;
    taken = 0;
  }

let reset ?(pc = 0) cpu =
  Array.fill cpu.regs 0 32 0;
  cpu.pc <- pc;
  cpu.retired <- 0;
  cpu.hi <- 0;
  cpu.lo <- 0;
  cpu.irq <- false;
  cpu.ie <- false;
  cpu.epc <- 0;
  cpu.taken <- 0

let set_irq cpu level = cpu.irq <- level
let interrupts_enabled cpu = cpu.ie
let interrupts_taken cpu = cpu.taken

let pc cpu = cpu.pc
let reg cpu i = cpu.regs.(i)

let set_reg cpu i v = if i <> 0 then cpu.regs.(i) <- mask32 v

let instructions_retired cpu = cpu.retired

let read_byte cpu addr =
  let word = mask32 (cpu.bus.read32 (addr land lnot 3)) in
  (word lsr ((addr land 3) * 8)) land 0xFF

let write_byte cpu addr v =
  let aligned = addr land lnot 3 in
  let word = mask32 (cpu.bus.read32 aligned) in
  let shift = (addr land 3) * 8 in
  let cleared = word land lnot (0xFF lsl shift) in
  cpu.bus.write32 aligned (cleared lor ((v land 0xFF) lsl shift))

let step cpu =
  if cpu.irq && cpu.ie then begin
    (* Take the external interrupt: mask further interrupts, save the
       return address and jump to the fixed vector. *)
    cpu.ie <- false;
    cpu.epc <- cpu.pc;
    cpu.pc <- interrupt_vector;
    cpu.taken <- cpu.taken + 1
  end;
  let w = mask32 (cpu.bus.read32 cpu.pc) in
  let opcode = (w lsr 26) land 0x3F in
  let rs = (w lsr 21) land 0x1F in
  let rt = (w lsr 16) land 0x1F in
  let rd = (w lsr 11) land 0x1F in
  let shamt = (w lsr 6) land 0x1F in
  let funct = w land 0x3F in
  let imm = w land 0xFFFF in
  let next_pc = ref (mask32 (cpu.pc + 4)) in
  let wr i v = set_reg cpu i v in
  (match opcode with
  | 0 -> (
      (* R-type *)
      match funct with
      | 0 -> wr rd (cpu.regs.(rt) lsl shamt)  (* sll *)
      | 2 -> wr rd (mask32 cpu.regs.(rt) lsr shamt)  (* srl *)
      | 3 -> wr rd (sign32 cpu.regs.(rt) asr shamt)  (* sra *)
      | 8 -> next_pc := cpu.regs.(rs)  (* jr *)
      | 32 | 33 -> wr rd (cpu.regs.(rs) + cpu.regs.(rt))  (* add/addu *)
      | 34 | 35 -> wr rd (cpu.regs.(rs) - cpu.regs.(rt))  (* sub/subu *)
      | 36 -> wr rd (cpu.regs.(rs) land cpu.regs.(rt))  (* and *)
      | 37 -> wr rd (cpu.regs.(rs) lor cpu.regs.(rt))  (* or *)
      | 38 -> wr rd (cpu.regs.(rs) lxor cpu.regs.(rt))  (* xor *)
      | 39 -> wr rd (lnot (cpu.regs.(rs) lor cpu.regs.(rt)))  (* nor *)
      | 42 -> wr rd (if sign32 cpu.regs.(rs) < sign32 cpu.regs.(rt) then 1 else 0)
      | 43 -> wr rd (if mask32 cpu.regs.(rs) < mask32 cpu.regs.(rt) then 1 else 0)
      | 16 -> wr rd cpu.hi  (* mfhi *)
      | 18 -> wr rd cpu.lo  (* mflo *)
      | 24 | 25 ->
          (* mult/multu *)
          let a, b =
            if funct = 24 then (sign32 cpu.regs.(rs), sign32 cpu.regs.(rt))
            else (mask32 cpu.regs.(rs), mask32 cpu.regs.(rt))
          in
          let p = a * b in
          cpu.lo <- mask32 p;
          cpu.hi <- mask32 (p asr 32)
      | 26 | 27 ->
          (* div/divu *)
          let a, b =
            if funct = 26 then (sign32 cpu.regs.(rs), sign32 cpu.regs.(rt))
            else (mask32 cpu.regs.(rs), mask32 cpu.regs.(rt))
          in
          if b = 0 then begin
            cpu.lo <- 0;
            cpu.hi <- 0
          end
          else begin
            cpu.lo <- mask32 (a / b);
            cpu.hi <- mask32 (a mod b)
          end
      | _ -> raise (Decode_error (w, cpu.pc)))
  | 1 -> (
      (* REGIMM: bltz (rt=0) / bgez (rt=1) *)
      match rt with
      | 0 ->
          if sign32 cpu.regs.(rs) < 0 then
            next_pc := mask32 (cpu.pc + 4 + (sign16 imm lsl 2))
      | 1 ->
          if sign32 cpu.regs.(rs) >= 0 then
            next_pc := mask32 (cpu.pc + 4 + (sign16 imm lsl 2))
      | _ -> raise (Decode_error (w, cpu.pc)))
  | 6 ->
      (* blez *)
      if sign32 cpu.regs.(rs) <= 0 then
        next_pc := mask32 (cpu.pc + 4 + (sign16 imm lsl 2))
  | 7 ->
      (* bgtz *)
      if sign32 cpu.regs.(rs) > 0 then
        next_pc := mask32 (cpu.pc + 4 + (sign16 imm lsl 2))
  | 16 -> (
      (* COP0 subset: mfc0/mtc0 on status ($12) and EPC ($14), eret *)
      match rs with
      | 0 ->
          (* mfc0 rt, rd *)
          wr rt (match rd with 12 -> if cpu.ie then 1 else 0 | 14 -> cpu.epc | _ -> 0)
      | 4 ->
          (* mtc0 rt, rd *)
          (match rd with
          | 12 -> cpu.ie <- cpu.regs.(rt) land 1 = 1
          | 14 -> cpu.epc <- mask32 cpu.regs.(rt)
          | _ -> ())
      | 16 when funct = 0x18 ->
          (* eret *)
          cpu.ie <- true;
          next_pc := cpu.epc
      | _ -> raise (Decode_error (w, cpu.pc)))
  | 2 -> next_pc := (cpu.pc land 0xF0000000) lor ((w land 0x3FFFFFF) lsl 2)
  | 3 ->
      wr 31 (cpu.pc + 4);
      next_pc := (cpu.pc land 0xF0000000) lor ((w land 0x3FFFFFF) lsl 2)
  | 4 ->
      (* beq: no delay slot in this ISS *)
      if mask32 cpu.regs.(rs) = mask32 cpu.regs.(rt) then
        next_pc := mask32 (cpu.pc + 4 + (sign16 imm lsl 2))
  | 5 ->
      if mask32 cpu.regs.(rs) <> mask32 cpu.regs.(rt) then
        next_pc := mask32 (cpu.pc + 4 + (sign16 imm lsl 2))
  | 8 | 9 -> wr rt (cpu.regs.(rs) + sign16 imm)  (* addi/addiu *)
  | 10 -> wr rt (if sign32 cpu.regs.(rs) < sign16 imm then 1 else 0)  (* slti *)
  | 11 -> wr rt (if mask32 cpu.regs.(rs) < mask32 (sign16 imm) then 1 else 0)
  | 12 -> wr rt (cpu.regs.(rs) land imm)  (* andi *)
  | 13 -> wr rt (cpu.regs.(rs) lor imm)  (* ori *)
  | 14 -> wr rt (cpu.regs.(rs) lxor imm)  (* xori *)
  | 15 -> wr rt (imm lsl 16)  (* lui *)
  | 32 ->
      (* lb *)
      let b = read_byte cpu (mask32 (cpu.regs.(rs) + sign16 imm)) in
      wr rt (if b land 0x80 <> 0 then b lor 0xFFFFFF00 else b)
  | 36 -> wr rt (read_byte cpu (mask32 (cpu.regs.(rs) + sign16 imm)))  (* lbu *)
  | 40 ->
      (* sb *)
      write_byte cpu (mask32 (cpu.regs.(rs) + sign16 imm)) cpu.regs.(rt)
  | 35 -> wr rt (cpu.bus.read32 (mask32 (cpu.regs.(rs) + sign16 imm)))  (* lw *)
  | 43 ->
      cpu.bus.write32 (mask32 (cpu.regs.(rs) + sign16 imm)) (mask32 cpu.regs.(rt))
  | _ -> raise (Decode_error (w, cpu.pc)));
  cpu.pc <- !next_pc;
  cpu.retired <- cpu.retired + 1
