lib/vp/asm.ml: Array Hashtbl List Printf String
