lib/vp/iss.ml: Array
