lib/vp/platform.ml: Amsvp_mna Amsvp_netlist Amsvp_sf Amsvp_sysc Amsvp_util Array Asm Bus Float Iss List Marshal Option Printf Uart_rtl
