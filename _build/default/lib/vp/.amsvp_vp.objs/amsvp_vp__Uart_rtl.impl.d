lib/vp/uart_rtl.ml: Amsvp_sysc Buffer Bus Char Queue
