lib/vp/bus.ml: Array Buffer Char Float Iss List Printf
