lib/vp/platform.mli: Amsvp_netlist Amsvp_sf Amsvp_sysc Amsvp_util
