lib/vp/iss.mli:
