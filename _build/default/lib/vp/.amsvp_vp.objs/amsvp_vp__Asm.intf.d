lib/vp/asm.mli:
