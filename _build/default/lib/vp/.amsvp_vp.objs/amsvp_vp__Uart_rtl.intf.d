lib/vp/uart_rtl.mli: Amsvp_sysc Bus
