lib/vp/bus.mli: Iss
