module De = Amsvp_sysc.De

type t = {
  fifo : int Queue.t;
  kick : De.Event.event;
  line : bool De.Signal.signal;
  decoded : Buffer.t;
  mutable frames : int;
  mutable busy : bool;
}

let attach kernel bus ~base ~bit_ps =
  if bit_ps <= 0 then invalid_arg "Uart_rtl.attach: bit duration must be positive";
  let u =
    {
      fifo = Queue.create ();
      kick = De.Event.create kernel "uart_rtl.kick";
      line = De.Signal.bool_signal kernel ~name:"uart_rtl.tx" true;
      decoded = Buffer.create 64;
      frames = 0;
      busy = false;
    }
  in
  Bus.attach bus ~name:"uart_rtl"
    {
      Bus.base;
      size = 16;
      read =
        (fun off ->
          match off with
          | 0 -> u.frames
          | 4 -> if u.busy || not (Queue.is_empty u.fifo) then 1 else 0
          | _ -> 0);
      write =
        (fun off v ->
          match off with
          | 0 ->
              Queue.add (v land 0xFF) u.fifo;
              De.Event.notify_delta u.kick
          | _ -> ());
    };
  (* Transmitter: an RTL thread shifting 8N1 frames onto the line. *)
  De.Thread.spawn kernel ~name:"uart_rtl.tx" (fun () ->
      let rec serve () =
        if Queue.is_empty u.fifo then begin
          u.busy <- false;
          De.Thread.wait_event kernel u.kick;
          serve ()
        end
        else begin
          u.busy <- true;
          let byte = Queue.take u.fifo in
          De.Signal.write u.line false (* start bit *);
          De.Thread.wait_ps kernel bit_ps;
          for bit = 0 to 7 do
            De.Signal.write u.line ((byte lsr bit) land 1 = 1);
            De.Thread.wait_ps kernel bit_ps
          done;
          De.Signal.write u.line true (* stop bit *);
          De.Thread.wait_ps kernel bit_ps;
          u.frames <- u.frames + 1;
          serve ()
        end
      in
      serve ());
  (* Line monitor: detects the start edge, samples bit centres and
     rebuilds the byte (a bit-accurate receiver). *)
  De.Thread.spawn kernel ~name:"uart_rtl.rx" (fun () ->
      let rec frames () =
        (* wait for a falling edge (start bit) *)
        let rec wait_start () =
          De.Thread.wait_event kernel (De.Signal.change_event u.line);
          if De.Signal.read u.line then wait_start ()
        in
        wait_start ();
        (* move to the centre of bit 0 *)
        De.Thread.wait_ps kernel (bit_ps + (bit_ps / 2));
        let byte = ref 0 in
        for bit = 0 to 7 do
          if De.Signal.read u.line then byte := !byte lor (1 lsl bit);
          if bit < 7 then De.Thread.wait_ps kernel bit_ps
        done;
        (* into the stop bit *)
        De.Thread.wait_ps kernel bit_ps;
        Buffer.add_char u.decoded (Char.chr (!byte land 0xFF));
        frames ()
      in
      frames ());
  u

let line u = u.line
let decoded u = Buffer.contents u.decoded
let frames_sent u = u.frames
let queued u = Queue.length u.fifo
