(** A small two-pass MIPS assembler.

    Supports the ISS instruction subset (ALU, shifts, [mult]/[div] with
    [mfhi]/[mflo], loads/stores including bytes, branches including the
    REGIMM relative forms, jumps, and the COP0 subset [mfc0]/[mtc0]/
    [eret] for interrupt handling) plus the pseudo-instructions [nop],
    [move], [li] (always expanded to [lui]+[ori] so label addresses are
    stable) and [la]; labels, [.word] and [.org] directives,
    decimal/hex immediates, and [#]/[;]/[//] comments. Register names
    accept both [$3] and symbolic ([$t0], [$sp], ...). *)

exception Asm_error of string * int
(** message, 1-based source line *)

val assemble : ?base:int -> string -> int array
(** [assemble src] returns the program as 32-bit words starting at
    address [base] (default 0).
    @raise Asm_error on syntax errors, unknown mnemonics/registers or
    out-of-range operands. *)

val disassemble_word : int -> string
(** Best-effort disassembly of one instruction word (used in error
    messages and tests). *)
