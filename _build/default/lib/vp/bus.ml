type device = {
  base : int;
  size : int;
  read : int -> int;
  write : int -> int -> unit;
}

type t = {
  mutable devices : (string * device) list;
  mutable transfers : int;
}

exception Bus_error of int

let create () = { devices = []; transfers = 0 }

let overlaps a b =
  a.base < b.base + b.size && b.base < a.base + a.size

let attach bus ~name dev =
  List.iter
    (fun (n, d) ->
      if overlaps d dev then
        invalid_arg
          (Printf.sprintf "Bus.attach: %s overlaps %s" name n))
    bus.devices;
  bus.devices <- bus.devices @ [ (name, dev) ]

let decode bus addr =
  let rec go = function
    | [] -> raise (Bus_error addr)
    | (_, d) :: rest ->
        if addr >= d.base && addr < d.base + d.size then (d, addr - d.base)
        else go rest
  in
  go bus.devices

let iss_bus bus =
  {
    Iss.read32 =
      (fun addr ->
        bus.transfers <- bus.transfers + 1;
        let d, off = decode bus addr in
        d.read off);
    Iss.write32 =
      (fun addr v ->
        bus.transfers <- bus.transfers + 1;
        let d, off = decode bus addr in
        d.write off v);
  }

let transfers bus = bus.transfers

module Ram = struct
  let attach bus ~base ~size_words =
    let mem = Array.make size_words 0 in
    attach bus ~name:"ram"
      {
        base;
        size = size_words * 4;
        read = (fun off -> mem.(off / 4));
        write = (fun off v -> mem.(off / 4) <- v land 0xFFFFFFFF);
      }

  let load bus ~base words =
    let b = iss_bus bus in
    Array.iteri (fun i w -> b.Iss.write32 (base + (4 * i)) w) words;
    (* Loading is not bus traffic of the running program. *)
    bus.transfers <- bus.transfers - Array.length words
end

module Uart = struct
  type uart = { buf : Buffer.t; mutable tx : int }

  let attach bus ~base =
    let u = { buf = Buffer.create 256; tx = 0 } in
    attach bus ~name:"uart"
      {
        base;
        size = 16;
        read =
          (fun off ->
            match off with
            | 0 -> u.tx
            | 4 -> 1 (* transmitter always ready *)
            | _ -> 0);
        write =
          (fun off v ->
            match off with
            | 0 ->
                Buffer.add_char u.buf (Char.chr (v land 0xFF));
                u.tx <- u.tx + 1
            | _ -> ());
      };
    u

  let output u = Buffer.contents u.buf
  let tx_count u = u.tx
end

module Adc = struct
  type adc = {
    mutable sample_uv : int;
    mutable seq : int;
    mutable irq_enabled : bool;
    mutable irq : bool;
  }

  let attach bus ~base =
    let a = { sample_uv = 0; seq = 0; irq_enabled = false; irq = false } in
    attach bus ~name:"adc"
      {
        base;
        size = 16;
        read =
          (fun off ->
            match off with
            | 0 ->
                (* Reading the sample acknowledges the interrupt. *)
                a.irq <- false;
                a.sample_uv land 0xFFFFFFFF
            | 4 -> a.seq land 0xFFFFFFFF
            | 8 -> if a.irq_enabled then 1 else 0
            | _ -> 0);
        write =
          (fun off v ->
            match off with
            | 8 -> a.irq_enabled <- v land 1 = 1
            | _ -> ());
      };
    a

  let set_sample a ~volts =
    a.sample_uv <- int_of_float (Float.round (volts *. 1e6));
    a.seq <- a.seq + 1;
    if a.irq_enabled then a.irq <- true

  let samples_pushed a = a.seq
  let irq_pending a = a.irq
end
