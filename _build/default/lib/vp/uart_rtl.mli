(** A bit-serial RTL UART transmitter on the discrete-event kernel.

    The paper's digital components are "described at RTL" (§V-B); this
    model transmits each byte as a real 8N1 frame (start bit, eight
    data bits LSB-first, stop bit) over a boolean line signal, driven
    by an SC_THREAD-style process at the configured baud rate. A
    monitor process samples the line at bit centres and reconstructs
    the byte stream, so the observable output stays comparable with
    the transaction-level UART.

    Register map (same as {!Bus.Uart}): +0 write = transmit byte;
    +0 read = bytes queued so far; +4 read = line status (bit 0 set
    while the transmitter FIFO is non-empty or a frame is on the
    wire... cleared when idle). *)

type t

val attach :
  Amsvp_sysc.De.t -> Bus.t -> base:int -> bit_ps:int -> t
(** Attach the device; [bit_ps] is the duration of one bit on the
    line. *)

val line : t -> bool Amsvp_sysc.De.Signal.signal
(** The serial line (idle high). *)

val decoded : t -> string
(** Bytes reconstructed by the line monitor so far. *)

val frames_sent : t -> int
val queued : t -> int
(** Bytes still waiting in the transmitter FIFO. *)
