exception Asm_error of string * int

let fail line fmt = Printf.ksprintf (fun s -> raise (Asm_error (s, line))) fmt

let reg_names =
  [|
    "zero"; "at"; "v0"; "v1"; "a0"; "a1"; "a2"; "a3";
    "t0"; "t1"; "t2"; "t3"; "t4"; "t5"; "t6"; "t7";
    "s0"; "s1"; "s2"; "s3"; "s4"; "s5"; "s6"; "s7";
    "t8"; "t9"; "k0"; "k1"; "gp"; "sp"; "fp"; "ra";
  |]

let parse_reg line s =
  let s = String.trim s in
  if String.length s < 2 || s.[0] <> '$' then fail line "bad register %s" s;
  let body = String.sub s 1 (String.length s - 1) in
  match int_of_string_opt body with
  | Some n when n >= 0 && n < 32 -> n
  | Some n -> fail line "register $%d out of range" n
  | None -> (
      let rec find i =
        if i >= 32 then fail line "unknown register %s" s
        else if reg_names.(i) = body then i
        else find (i + 1)
      in
      find 0)

let parse_int line s =
  let s = String.trim s in
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail line "bad integer %s" s

(* Strip comments, split into (line_number, label list, mnemonic, operands). *)
type stmt = {
  line : int;
  label : string option;
  mnemonic : string option;
  operands : string list;
}

let parse_line idx raw =
  let cut sep s =
    match String.index_opt s sep with Some i -> String.sub s 0 i | None -> s
  in
  let s = cut '#' raw in
  let s = cut ';' s in
  let s =
    (* strip a // comment *)
    let n = String.length s in
    let rec find i =
      if i + 1 >= n then s
      else if s.[i] = '/' && s.[i + 1] = '/' then String.sub s 0 i
      else find (i + 1)
    in
    find 0
  in
  let s = String.trim s in
  if s = "" then []
  else begin
    let label, rest =
      match String.index_opt s ':' with
      | Some i
        when String.for_all
               (fun c ->
                 (c >= 'a' && c <= 'z')
                 || (c >= 'A' && c <= 'Z')
                 || (c >= '0' && c <= '9')
                 || c = '_')
               (String.sub s 0 i) ->
          ( Some (String.sub s 0 i),
            String.trim (String.sub s (i + 1) (String.length s - i - 1)) )
      | _ -> (None, s)
    in
    if rest = "" then [ { line = idx; label; mnemonic = None; operands = [] } ]
    else begin
      let mnemonic, args =
        match String.index_opt rest ' ' with
        | None -> (rest, "")
        | Some i ->
            ( String.sub rest 0 i,
              String.sub rest (i + 1) (String.length rest - i - 1) )
      in
      let operands =
        if String.trim args = "" then []
        else String.split_on_char ',' args |> List.map String.trim
      in
      [ { line = idx; label; mnemonic = Some (String.lowercase_ascii mnemonic); operands } ]
    end
  end

(* Width in words of one statement (pseudo-instructions expand). *)
let width st =
  match st.mnemonic with
  | None -> 0
  | Some m -> (
      match m with
      | "li" | "la" -> 2
      | ".word" -> List.length st.operands
      | ".org" -> -1 (* resolved in the passes *)
      | _ -> 1)

let r_type funct rd rs rt shamt =
  (0 lsl 26) lor (rs lsl 21) lor (rt lsl 16) lor (rd lsl 11) lor (shamt lsl 6)
  lor funct

let i_type op rs rt imm = (op lsl 26) lor (rs lsl 21) lor (rt lsl 16) lor (imm land 0xFFFF)
let j_type op target = (op lsl 26) lor ((target lsr 2) land 0x3FFFFFF)

(* mem operand: "offset($reg)" *)
let parse_mem line s =
  match String.index_opt s '(' with
  | None -> fail line "expected offset($reg), got %s" s
  | Some i ->
      let off = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      (match String.index_opt rest ')' with
      | None -> fail line "missing ')' in %s" s
      | Some j ->
          let reg = String.sub rest 0 j in
          let off = if String.trim off = "" then 0 else parse_int line off in
          (off, parse_reg line reg))

let assemble ?(base = 0) src =
  let stmts =
    String.split_on_char '\n' src
    |> List.mapi (fun i l -> parse_line (i + 1) l)
    |> List.concat
  in
  (* Pass 1: label addresses. *)
  let labels = Hashtbl.create 16 in
  let addr = ref base in
  List.iter
    (fun st ->
      (match st.label with
      | Some l ->
          if Hashtbl.mem labels l then fail st.line "duplicate label %s" l;
          Hashtbl.add labels l !addr
      | None -> ());
      match st.mnemonic with
      | Some ".org" -> (
          match st.operands with
          | [ target ] ->
              let target = parse_int st.line target in
              if target < !addr then fail st.line ".org going backwards";
              addr := target
          | _ -> fail st.line ".org takes one operand")
      | _ -> addr := !addr + (4 * width st))
    stmts;
  let resolve line s =
    match Hashtbl.find_opt labels s with
    | Some a -> a
    | None -> parse_int line s
  in
  (* Pass 2: encoding. *)
  let words = ref [] in
  let emit w = words := (w land 0xFFFFFFFF) :: !words in
  let addr = ref base in
  List.iter
    (fun st ->
      let line = st.line in
      let pc = !addr in
      (match st.mnemonic with
      | None -> ()
      | Some ".org" -> (
          match st.operands with
          | [ target ] ->
              let target = parse_int line target in
              while !addr + 4 <= target do
                emit 0;
                addr := !addr + 4
              done
          | _ -> fail line ".org takes one operand")
      | Some m -> (
          let ops = Array.of_list st.operands in
          let nth i =
            if i < Array.length ops then ops.(i)
            else fail line "missing operand %d for %s" (i + 1) m
          in
          let rrr funct =
            emit
              (r_type funct (parse_reg line (nth 0)) (parse_reg line (nth 1))
                 (parse_reg line (nth 2)) 0)
          in
          let shift funct =
            emit
              (r_type funct (parse_reg line (nth 0)) 0 (parse_reg line (nth 1))
                 (parse_int line (nth 2)))
          in
          let imm_arith op =
            emit
              (i_type op (parse_reg line (nth 1)) (parse_reg line (nth 0))
                 (resolve line (nth 2)))
          in
          let branch op =
            let target = resolve line (nth 2) in
            let off = (target - (pc + 4)) asr 2 in
            if off < -32768 || off > 32767 then fail line "branch out of range";
            emit (i_type op (parse_reg line (nth 0)) (parse_reg line (nth 1)) off)
          in
          match m with
          | "nop" -> emit 0
          | "add" -> rrr 32
          | "addu" -> rrr 33
          | "sub" -> rrr 34
          | "subu" -> rrr 35
          | "and" -> rrr 36
          | "or" -> rrr 37
          | "xor" -> rrr 38
          | "nor" -> rrr 39
          | "slt" -> rrr 42
          | "sltu" -> rrr 43
          | "sll" -> shift 0
          | "srl" -> shift 2
          | "sra" -> shift 3
          | "jr" -> emit (r_type 8 0 (parse_reg line (nth 0)) 0 0)
          | "mfhi" -> emit (r_type 16 (parse_reg line (nth 0)) 0 0 0)
          | "mflo" -> emit (r_type 18 (parse_reg line (nth 0)) 0 0 0)
          | "mult" ->
              emit (r_type 24 0 (parse_reg line (nth 0)) (parse_reg line (nth 1)) 0)
          | "multu" ->
              emit (r_type 25 0 (parse_reg line (nth 0)) (parse_reg line (nth 1)) 0)
          | "div" ->
              emit (r_type 26 0 (parse_reg line (nth 0)) (parse_reg line (nth 1)) 0)
          | "divu" ->
              emit (r_type 27 0 (parse_reg line (nth 0)) (parse_reg line (nth 1)) 0)
          | "bltz" | "bgez" ->
              let rt = if m = "bltz" then 0 else 1 in
              let target = resolve line (nth 1) in
              let off = (target - (pc + 4)) asr 2 in
              if off < -32768 || off > 32767 then fail line "branch out of range";
              emit (i_type 1 (parse_reg line (nth 0)) rt off)
          | "blez" | "bgtz" ->
              let op = if m = "blez" then 6 else 7 in
              let target = resolve line (nth 1) in
              let off = (target - (pc + 4)) asr 2 in
              if off < -32768 || off > 32767 then fail line "branch out of range";
              emit (i_type op (parse_reg line (nth 0)) 0 off)
          | "mfc0" ->
              emit
                ((16 lsl 26) lor (0 lsl 21)
                lor (parse_reg line (nth 0) lsl 16)
                lor (parse_reg line (nth 1) lsl 11))
          | "mtc0" ->
              emit
                ((16 lsl 26) lor (4 lsl 21)
                lor (parse_reg line (nth 0) lsl 16)
                lor (parse_reg line (nth 1) lsl 11))
          | "eret" -> emit ((16 lsl 26) lor (16 lsl 21) lor 0x18)
          | "lb" ->
              let off, rs = parse_mem line (nth 1) in
              emit (i_type 32 rs (parse_reg line (nth 0)) off)
          | "lbu" ->
              let off, rs = parse_mem line (nth 1) in
              emit (i_type 36 rs (parse_reg line (nth 0)) off)
          | "sb" ->
              let off, rs = parse_mem line (nth 1) in
              emit (i_type 40 rs (parse_reg line (nth 0)) off)
          | "move" ->
              emit (r_type 33 (parse_reg line (nth 0)) (parse_reg line (nth 1)) 0 0)
          | "addi" -> imm_arith 8
          | "addiu" -> imm_arith 9
          | "slti" -> imm_arith 10
          | "sltiu" -> imm_arith 11
          | "andi" -> imm_arith 12
          | "ori" -> imm_arith 13
          | "xori" -> imm_arith 14
          | "lui" ->
              emit (i_type 15 0 (parse_reg line (nth 0)) (resolve line (nth 1)))
          | "li" | "la" ->
              let rt = parse_reg line (nth 0) in
              let v = resolve line (nth 1) land 0xFFFFFFFF in
              emit (i_type 15 0 rt (v lsr 16));
              emit (i_type 13 rt rt (v land 0xFFFF))
          | "lw" ->
              let off, rs = parse_mem line (nth 1) in
              emit (i_type 35 rs (parse_reg line (nth 0)) off)
          | "sw" ->
              let off, rs = parse_mem line (nth 1) in
              emit (i_type 43 rs (parse_reg line (nth 0)) off)
          | "beq" -> branch 4
          | "bne" -> branch 5
          | "j" -> emit (j_type 2 (resolve line (nth 0)))
          | "jal" -> emit (j_type 3 (resolve line (nth 0)))
          | ".word" -> List.iter (fun o -> emit (resolve line o)) st.operands
          | _ -> fail line "unknown mnemonic %s" m));
      (match st.mnemonic with
      | Some ".org" -> ()
      | _ -> addr := !addr + (4 * width st)))
    stmts;
  Array.of_list (List.rev !words)

let disassemble_word w =
  let opcode = (w lsr 26) land 0x3F in
  let rs = (w lsr 21) land 0x1F and rt = (w lsr 16) land 0x1F in
  let rd = (w lsr 11) land 0x1F in
  let imm = w land 0xFFFF in
  let funct = w land 0x3F in
  let r i = "$" ^ reg_names.(i) in
  match opcode with
  | 0 -> (
      match funct with
      | 0 when w = 0 -> "nop"
      | 0 -> Printf.sprintf "sll %s, %s, %d" (r rd) (r rt) ((w lsr 6) land 31)
      | 8 -> Printf.sprintf "jr %s" (r rs)
      | 33 -> Printf.sprintf "addu %s, %s, %s" (r rd) (r rs) (r rt)
      | 35 -> Printf.sprintf "subu %s, %s, %s" (r rd) (r rs) (r rt)
      | 42 -> Printf.sprintf "slt %s, %s, %s" (r rd) (r rs) (r rt)
      | _ -> Printf.sprintf "r-type funct=%d" funct)
  | 4 -> Printf.sprintf "beq %s, %s, %d" (r rs) (r rt) imm
  | 5 -> Printf.sprintf "bne %s, %s, %d" (r rs) (r rt) imm
  | 9 -> Printf.sprintf "addiu %s, %s, %d" (r rt) (r rs) imm
  | 13 -> Printf.sprintf "ori %s, %s, %d" (r rt) (r rs) imm
  | 15 -> Printf.sprintf "lui %s, %d" (r rt) imm
  | 35 -> Printf.sprintf "lw %s, %d(%s)" (r rt) imm (r rs)
  | 43 -> Printf.sprintf "sw %s, %d(%s)" (r rt) imm (r rs)
  | 2 -> Printf.sprintf "j 0x%x" ((w land 0x3FFFFFF) lsl 2)
  | _ -> Printf.sprintf "op=%d" opcode
