(** A MIPS-I subset instruction-set simulator.

    The digital core of the paper's virtual platform is "a MIPS-based
    CPU executing assembly instructions contained in the memory"
    (§V-B). This ISS executes one instruction per [step] through a
    word-addressed bus callback, supporting the integer subset a
    polling/IO workload needs: ALU ops (register and immediate),
    shifts, [lui], loads/stores, branches, jumps and [jal]/[jr].

    Unsupported encodings raise {!Decode_error} rather than silently
    executing as nops. *)

type bus = { read32 : int -> int; write32 : int -> int -> unit }
(** Word-aligned physical memory interface; addresses and data are
    OCaml ints holding 32-bit values. *)

type t

exception Decode_error of int * int
(** opcode word, pc *)

val create : ?pc:int -> bus -> t
val reset : ?pc:int -> t -> unit

val step : t -> unit
(** Fetch, decode and execute one instruction. A pending interrupt is
    taken first when interrupts are enabled: the return address is
    saved to EPC, interrupts are masked and control transfers to
    {!interrupt_vector}. *)

val pc : t -> int
val reg : t -> int -> int
(** Register file access (register 0 is hard-wired to zero). *)

val set_reg : t -> int -> int -> unit
val instructions_retired : t -> int

(** {1 Interrupts}

    A minimal external-interrupt model: one level-triggered request
    line, an enable bit (COP0-style status, managed by [mtc0 rt, $12]
    and restored by [eret]) and an EPC register ([mfc0 rt, $14]). *)

val interrupt_vector : int
(** Fixed handler address (0x80). *)

val set_irq : t -> bool -> unit
(** Drive the external interrupt request line. *)

val interrupts_enabled : t -> bool
val interrupts_taken : t -> int
