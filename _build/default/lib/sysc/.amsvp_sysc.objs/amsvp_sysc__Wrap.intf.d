lib/sysc/wrap.mli: Amsvp_netlist Amsvp_sf Amsvp_util De Expr
