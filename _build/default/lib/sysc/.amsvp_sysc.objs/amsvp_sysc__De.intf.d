lib/sysc/de.mli: Amsvp_util
