lib/sysc/tdf.mli: De
