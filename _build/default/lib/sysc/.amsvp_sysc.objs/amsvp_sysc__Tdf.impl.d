lib/sysc/tdf.ml: Array De List Option Printf Queue
