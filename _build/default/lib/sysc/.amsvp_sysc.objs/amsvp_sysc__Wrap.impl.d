lib/sysc/wrap.ml: Amsvp_mna Amsvp_sf Amsvp_util Array De Float List Printf Tdf
