lib/sysc/de.ml: Amsvp_util Array Effect Float List Printf
