(** A SystemC-like discrete-event simulation kernel.

    Faithful to the SystemC-DE model of computation: processes are
    callbacks statically or dynamically sensitive to events; signals
    have request/update semantics (writes become visible one delta
    cycle later); simulated time advances to the next pending event
    once the delta loop drains. Time is integer picoseconds, so a
    50 ns analog timestep over 10 s of simulated time stays exact. *)

type t
(** A kernel instance. *)

val create : unit -> t

val now_ps : t -> int
(** Current simulated time in picoseconds. *)

val now : t -> float
(** Current simulated time in seconds. *)

val ps_of_seconds : float -> int
val seconds_of_ps : int -> float

type process
(** An SC_METHOD-like process: a callback run by the kernel whenever an
    event it is sensitive to fires. *)

val spawn : t -> name:string -> (unit -> unit) -> process
(** Register an SC_METHOD-like process. It does not run until an event
    triggers it (use {!Event.notify_delta} on a sensitive event for
    time-zero activation). *)


module Event : sig
  type event

  val create : t -> string -> event

  val sensitize : process -> event -> unit
  (** Static sensitivity: the process runs whenever the event fires. *)

  val notify_delayed : event -> delay_ps:int -> unit
  (** Schedule the event [delay_ps] after the current time;
      [delay_ps >= 0]. Multiple notifications of the same event at the
      same instant collapse. *)

  val notify_delta : event -> unit
  (** Schedule for the next delta cycle of the current instant. *)
end

module Signal : sig
  type 'a signal

  val create : t -> name:string -> eq:('a -> 'a -> bool) -> 'a -> 'a signal
  (** A signal with an initial value; [eq] decides whether a write
      changes the value (change detection drives sensitivity). *)

  val float_signal : t -> name:string -> float -> float signal
  val bool_signal : t -> name:string -> bool -> bool signal
  val int_signal : t -> name:string -> int -> int signal

  val read : 'a signal -> 'a
  (** The current (stable) value. *)

  val write : 'a signal -> 'a -> unit
  (** Request/update: the new value becomes visible at the next delta
      boundary; the signal's change event fires only if the value
      actually changed. *)

  val change_event : 'a signal -> Event.event
end

(** {1 Thread processes}

    SC_THREAD-like processes: a sequential body that suspends itself
    with [wait] calls, implemented with OCaml effects (one-shot
    continuations) — no OS threads involved. A thread starts at time
    zero and dies when its body returns. *)

module Thread : sig
  val spawn : t -> name:string -> (unit -> unit) -> unit
  (** Register a thread; its body begins executing in the first delta
      cycle of time zero. *)

  val wait_ps : t -> int -> unit
  (** Suspend the calling thread for the given simulated time
      ([>= 0]; 0 waits one delta cycle).
      @raise Invalid_argument when called outside a thread body. *)

  val wait_event : t -> Event.event -> unit
  (** Suspend until the event fires. *)
end

(** {1 Signal tracing}

    The [sc_trace] equivalent: registered float signals are sampled on
    every change and can be exported as a VCD document. *)

module Tracing : sig
  type recorder

  val create : t -> recorder

  val watch : recorder -> name:string -> float Signal.signal -> unit
  (** Record every value change of the signal (including its initial
      value at registration time). *)

  val to_vcd : recorder -> string
  (** Render all watched signals as a VCD document
      (see {!Amsvp_util.Vcd}). *)

  val traces : recorder -> (string * Amsvp_util.Trace.t) list
end

val run_until : t -> ps:int -> unit
(** Run the delta/time loop until simulated time would exceed [ps] (all
    activity at time [ps] included) or no events remain. *)

val run : t -> unit
(** Run until no events remain. *)

type stats = {
  activations : int;  (** process callback invocations *)
  delta_cycles : int;
  timed_notifications : int;
  signal_updates : int;
}

val stats : t -> stats
