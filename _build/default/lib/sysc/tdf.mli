(** A SystemC-AMS-like timed data-flow (TDF) model of computation.

    Modules exchange tokens through fixed-rate ports; the schedule is
    computed statically from producer/consumer dependencies (§II-A) and
    replayed every cluster activation. The cluster is attached to the
    discrete-event kernel and re-activated every timestep through a
    kernel event — the AMS/DE synchronisation boundary whose cost is
    what distinguishes the SC-AMS/TDF rows from the SC-DE rows in the
    paper's tables. *)

type cluster

val create_cluster : De.t -> name:string -> timestep_ps:int -> cluster

type port
(** A single-producer token buffer carrying floats. *)

val port : cluster -> string -> rate:int -> port
(** A port exchanging [rate] tokens per activation. *)

type tdf_module

val add_module :
  cluster ->
  name:string ->
  reads:port list ->
  writes:port list ->
  (unit -> unit) ->
  tdf_module
(** Register a single-rate processing callback (each port is accessed
    at its declared rate, once per repetition). [reads]/[writes]
    declare the data dependencies used to compute the static
    schedule. *)

val add_module_rated :
  cluster ->
  name:string ->
  reads:(port * int) list ->
  writes:(port * int) list ->
  (int -> unit) ->
  tdf_module
(** Multirate registration: each connection carries its own rate. The
    scheduler solves the SDF balance equations
    ([producer_rate * reps(producer) = consumer_rate * reps(consumer)])
    for the repetition vector; the body receives its repetition index
    within the activation, and {!read}/{!write} index into that
    repetition's token window.
    @raise Invalid_argument on inconsistent rate systems. *)

val read : port -> int -> float
(** [read p i] is the i-th token of the current repetition's window. *)

val write : port -> int -> float -> unit

(** {1 DE boundary converters} *)

val from_de : cluster -> name:string -> float De.Signal.signal -> port
(** A converter module sampling a kernel signal into a rate-1 port at
    every activation. *)

val to_de : cluster -> name:string -> port -> float De.Signal.signal
(** A converter module writing a rate-1 port into a kernel signal at
    every activation (one request/update per timestep — the sync
    overhead). *)

val start : cluster -> until_ps:int -> unit
(** Compute the repetition vector and the static schedule (topological
    order of the module graph), size the token buffers, attach the
    cluster to the kernel and schedule activations every timestep until
    [until_ps] (the caller still has to run the kernel).
    @raise Invalid_argument if the module graph has a combinational
    cycle, a port with several producers, a consumer-only port, or an
    inconsistent rate system. *)

type cluster_stats = {
  activations : int;
  modules : int;
  schedule_length : int;  (** total module firings per activation *)
}

val cluster_stats : cluster -> cluster_stats
