(** SPICE netlist export.

    Renders a circuit as a standard SPICE deck so the networks built or
    elaborated here can be cross-checked in any external SPICE-class
    simulator (the paper's reference tooling world). The ground node is
    printed as [0]; external inputs become 0 V DC sources annotated
    with the signal name; piecewise-linear conductances are emitted as
    behavioural current sources. *)

val to_spice : ?title:string -> Circuit.t -> string
