let spice_node ground n = if n = ground then "0" else n

let to_spice ?(title = "amsvp export") circuit =
  let ground = Circuit.ground circuit in
  let node = spice_node ground in
  let buf = Buffer.create 512 in
  Buffer.add_string buf ("* " ^ title ^ "\n");
  List.iter
    (fun (d : Component.t) ->
      let p = node d.pos and q = node d.neg in
      let line =
        match d.kind with
        | Component.Resistor r -> Printf.sprintf "R%s %s %s %.9g" d.name p q r
        | Component.Capacitor c -> Printf.sprintf "C%s %s %s %.9g" d.name p q c
        | Component.Inductor l -> Printf.sprintf "L%s %s %s %.9g" d.name p q l
        | Component.Vsource (Component.Dc v) ->
            Printf.sprintf "V%s %s %s DC %.9g" d.name p q v
        | Component.Vsource (Component.Input u) ->
            Printf.sprintf "V%s %s %s DC 0 ; external input %s" d.name p q u
        | Component.Isource (Component.Dc v) ->
            Printf.sprintf "I%s %s %s DC %.9g" d.name p q v
        | Component.Isource (Component.Input u) ->
            Printf.sprintf "I%s %s %s DC 0 ; external input %s" d.name p q u
        | Component.Vcvs { gain; ctrl_pos; ctrl_neg } ->
            Printf.sprintf "E%s %s %s %s %s %.9g" d.name p q (node ctrl_pos)
              (node ctrl_neg) gain
        | Component.Vccs { gm; ctrl_pos; ctrl_neg } ->
            Printf.sprintf "G%s %s %s %s %s %.9g" d.name p q (node ctrl_pos)
              (node ctrl_neg) gm
        | Component.Pwl_conductance { g_on; g_off; threshold } ->
            Printf.sprintf
              "B%s %s %s I=V(%s,%s)>=%.9g ? %.9g*V(%s,%s) : %.9g*V(%s,%s)"
              d.name p q p q threshold g_on p q g_off p q
      in
      Buffer.add_string buf (line ^ "\n"))
    (Circuit.devices circuit);
  Buffer.add_string buf ".end\n";
  Buffer.contents buf
