type t = {
  circuit : Circuit.t;
  nodes : string array;
  index : (string, int) Hashtbl.t;
  devices : Component.t array;
  (* parent.(n) = Some (parent node, device, forward) once the BFS
     spanning tree is built; forward is true when the device is
     traversed pos -> neg walking from parent to n. *)
  parent : (int * Component.t * bool) option array;
  depth : int array;
  tree_device : (string, unit) Hashtbl.t;
}

let of_circuit circuit =
  (match Circuit.validate circuit with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Graph.of_circuit: " ^ msg));
  let nodes = Array.of_list (Circuit.nodes circuit) in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i n -> Hashtbl.add index n i) nodes;
  let devices = Array.of_list (Circuit.devices circuit) in
  let n = Array.length nodes in
  let parent = Array.make n None in
  let depth = Array.make n (-1) in
  let tree_device = Hashtbl.create 16 in
  (* BFS from ground to build the spanning tree. *)
  let adj = Array.make n [] in
  Array.iter
    (fun (d : Component.t) ->
      let p = Hashtbl.find index d.pos and q = Hashtbl.find index d.neg in
      adj.(p) <- (q, d, true) :: adj.(p);
      adj.(q) <- (p, d, false) :: adj.(q))
    devices;
  let root = Hashtbl.find index (Circuit.ground circuit) in
  let queue = Queue.create () in
  depth.(root) <- 0;
  Queue.add root queue;
  while not (Queue.is_empty queue) do
    let u = Queue.take queue in
    List.iter
      (fun (v, (d : Component.t), forward) ->
        if depth.(v) < 0 then begin
          depth.(v) <- depth.(u) + 1;
          parent.(v) <- Some (u, d, forward);
          Hashtbl.replace tree_device d.name ();
          Queue.add v queue
        end)
      adj.(u)
  done;
  { circuit; nodes; index; devices; parent; depth; tree_device }

let node_count g = Array.length g.nodes
let branch_count g = Array.length g.devices
let loop_count g = branch_count g - node_count g + 1

let kcl_equations g =
  let ground = Circuit.ground g.circuit in
  Array.to_list g.nodes
  |> List.filter (fun n -> n <> ground)
  |> List.map (fun n ->
         let terms =
           Array.to_list g.devices
           |> List.concat_map (fun (d : Component.t) ->
                  let i = Expr.var (Component.flow_var d) in
                  if d.pos = n then [ i ]
                  else if d.neg = n then [ Expr.neg i ]
                  else [])
         in
         let sum = List.fold_left Expr.( + ) Expr.zero terms in
         Eqn.make (Eqn.Kcl n) ~lhs:sum ~rhs:Expr.zero)

(* Tree path from the root down to node [v], as (device, sign) pairs in
   root -> node order; sign is +1 when the downward traversal crosses
   the device in its pos -> neg direction. *)
let path_terms g v =
  let rec up v acc =
    match g.parent.(v) with
    | None -> acc
    | Some (u, d, forward) ->
        let sign = if forward then 1.0 else -1.0 in
        up u ((d, sign) :: acc)
  in
  up v []

let kvl_equations g =
  let loops = ref [] in
  let idx = ref 0 in
  Array.iter
    (fun (d : Component.t) ->
      if not (Hashtbl.mem g.tree_device d.name) then begin
        (* Fundamental loop: traverse d from pos to neg, then return
           from neg to pos through the tree. Express the return path as
           path(neg -> root) minus the common suffix with
           path(pos -> root). *)
        let p = Hashtbl.find g.index d.pos and q = Hashtbl.find g.index d.neg in
        let to_root_p = path_terms g p and to_root_q = path_terms g q in
        (* Both lists are root -> node ordered; strip the common prefix
           (shared path from root), keeping the diverging parts. *)
        let rec strip a b =
          match (a, b) with
          | (d1, _) :: ta, (d2, _) :: tb
            when (d1 : Component.t).name = (d2 : Component.t).name ->
              strip ta tb
          | _ -> (a, b)
        in
        let branch_p, branch_q = strip to_root_p to_root_q in
        (* Loop = d (pos->neg), then q up to the meeting point
           (reverse of root->q direction), then meeting point down to p
           (same as root->p direction). *)
        let terms =
          (Component.potential_var d, 1.0)
          :: (List.rev_map
                (fun ((dev : Component.t), s) ->
                  (Component.potential_var dev, -.s))
                branch_q
             @ List.map
                 (fun ((dev : Component.t), s) ->
                   (Component.potential_var dev, s))
                 branch_p)
        in
        (* Merge coefficients of shared potentials; drop trivial loops. *)
        let merged =
          List.fold_left
            (fun acc (v, s) ->
              let prev =
                match
                  List.find_opt (fun (w, _) -> Expr.equal_var v w) acc
                with
                | Some (_, c) -> c
                | None -> 0.0
              in
              (v, prev +. s)
              :: List.filter (fun (w, _) -> not (Expr.equal_var v w)) acc)
            [] terms
          |> List.filter (fun (_, c) -> c <> 0.0)
        in
        if merged <> [] then begin
          let sum =
            List.fold_left
              (fun acc (pv, c) -> Expr.( + ) acc (Expr.scale c (Expr.var pv)))
              Expr.zero merged
          in
          incr idx;
          loops := Eqn.make (Eqn.Kvl !idx) ~lhs:sum ~rhs:Expr.zero :: !loops
        end
      end)
    g.devices;
  List.rev !loops

let pp ppf g =
  Format.fprintf ppf "graph: %d nodes, %d branches, %d fundamental loops"
    (node_count g) (branch_count g) (loop_count g)
