lib/netlist/circuit.mli: Component Eqn Format
