lib/netlist/circuits.ml: Amsvp_util Circuit Component Expr Printf String
