lib/netlist/component.mli: Eqn Expr Format
