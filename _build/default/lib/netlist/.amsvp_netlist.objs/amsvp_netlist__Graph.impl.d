lib/netlist/graph.ml: Array Circuit Component Eqn Expr Format Hashtbl List Queue
