lib/netlist/export.mli: Circuit
