lib/netlist/circuits.mli: Amsvp_util Circuit Expr
