lib/netlist/graph.mli: Circuit Eqn Format
