lib/netlist/export.ml: Buffer Circuit Component List Printf
