lib/netlist/circuit.ml: Component Format Hashtbl List Printf Set String
