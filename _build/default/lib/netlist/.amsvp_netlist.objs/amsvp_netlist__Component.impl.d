lib/netlist/component.ml: Eqn Expr Format Printf
