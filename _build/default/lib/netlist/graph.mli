(** Topology of a circuit: the graph [G = (N, B)] of §IV-A.

    Provides the implicit energy-conservation equations the enrichment
    step adds to the dipole equations: Kirchhoff's current law at every
    non-reference node (nodal analysis) and Kirchhoff's voltage law
    around every fundamental loop of a spanning tree (mesh analysis). *)

type t

val of_circuit : Circuit.t -> t
(** @raise Invalid_argument if the circuit fails {!Circuit.validate}. *)

val node_count : t -> int
val branch_count : t -> int

val loop_count : t -> int
(** Number of fundamental loops, [|B| - |N| + 1] for a connected
    graph. *)

val kcl_equations : t -> Eqn.t list
(** One equation per non-ground node: the signed sum of branch flows
    leaving the node is zero (flow orientation: positive from the
    device's [pos] to [neg]). *)

val kvl_equations : t -> Eqn.t list
(** One equation per fundamental loop: the signed sum of branch
    potentials around the loop is zero. Loops whose equation is
    trivially [0 = 0] (e.g. two parallel devices sharing the same
    oriented node pair) are dropped. *)

val pp : Format.formatter -> t -> unit
