lib/util/vcd.mli: Trace
