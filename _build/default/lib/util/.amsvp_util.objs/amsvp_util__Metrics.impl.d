lib/util/metrics.ml: Array Trace
