lib/util/metrics.mli: Trace
