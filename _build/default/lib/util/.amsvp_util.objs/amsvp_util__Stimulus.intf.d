lib/util/stimulus.mli:
