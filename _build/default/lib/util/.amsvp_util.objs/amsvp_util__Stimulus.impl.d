lib/util/stimulus.ml: Array Float
