lib/util/vcd.ml: Array Buffer Char Float List Printf String Trace
