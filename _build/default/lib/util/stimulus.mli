(** Stimulus waveform generators.

    The paper stimulates every model with a square-wave generator
    "modeled by using the same MoC of the component under test"
    (§V-A); these generators are shared by every back-end so that no
    MoC pays an artificial interface penalty. *)

type t = float -> float
(** A stimulus is a pure function of simulated time (seconds). *)

(** [square ~period ~low ~high t] is [high] during the first half of
    each period and [low] during the second half. [period] must be
    positive. *)
val square : period:float -> low:float -> high:float -> t

(** [sine ~freq ~amplitude ?offset ?phase ()] is a sinusoid. *)
val sine :
  freq:float -> amplitude:float -> ?offset:float -> ?phase:float -> unit -> t

(** [step ~at ~low ~high] switches from [low] to [high] at time [at]. *)
val step : at:float -> low:float -> high:float -> t

(** [pwl points] linearly interpolates a piecewise-linear waveform given
    as [(time, value)] pairs sorted by time; constant extrapolation
    outside the span.
    @raise Invalid_argument on an empty or unsorted list. *)
val pwl : (float * float) list -> t

(** [constant v] is the constant waveform [v]. *)
val constant : float -> t
