type t = float -> float

let square ~period ~low ~high =
  if period <= 0.0 then invalid_arg "Stimulus.square: period must be positive";
  fun t ->
    let phase = Float.rem t period in
    let phase = if phase < 0.0 then phase +. period else phase in
    if phase < period /. 2.0 then high else low

let sine ~freq ~amplitude ?(offset = 0.0) ?(phase = 0.0) () =
  let w = 2.0 *. Float.pi *. freq in
  fun t -> offset +. (amplitude *. sin ((w *. t) +. phase))

let step ~at ~low ~high = fun t -> if t < at then low else high

let pwl points =
  match points with
  | [] -> invalid_arg "Stimulus.pwl: empty point list"
  | (t0, _) :: rest ->
      let rec check prev = function
        | [] -> ()
        | (t, _) :: tl ->
            if t < prev then invalid_arg "Stimulus.pwl: unsorted points";
            check t tl
      in
      check t0 rest;
      let arr = Array.of_list points in
      let n = Array.length arr in
      fun t ->
        if t <= fst arr.(0) then snd arr.(0)
        else if t >= fst arr.(n - 1) then snd arr.(n - 1)
        else begin
          (* rightmost segment start with time <= t *)
          let rec loop lo hi =
            if hi - lo <= 1 then lo
            else
              let mid = (lo + hi) / 2 in
              if fst arr.(mid) <= t then loop mid hi else loop lo mid
          in
          let i = loop 0 n in
          let ta, va = arr.(i) and tb, vb = arr.(i + 1) in
          if tb = ta then vb else va +. ((vb -. va) *. (t -. ta) /. (tb -. ta))
        end

let constant v = fun _ -> v
