let identifier i =
  (* Printable VCD short identifiers, starting at '!' (ASCII 33). *)
  let base = 94 and first = 33 in
  let rec go i acc =
    let c = Char.chr (first + (i mod base)) in
    let acc = String.make 1 c ^ acc in
    if i < base then acc else go ((i / base) - 1) acc
  in
  go i ""

let to_string ?(timescale_ps = 1000) signals =
  if signals = [] then invalid_arg "Vcd.to_string: no signals";
  let names = List.map fst signals in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Vcd.to_string: duplicate signal names";
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "$date amsvp $end\n";
  Buffer.add_string buf "$version amsvp trace export $end\n";
  Buffer.add_string buf
    (Printf.sprintf "$timescale %d ps $end\n$scope module amsvp $end\n"
       timescale_ps);
  List.iteri
    (fun i (name, _) ->
      Buffer.add_string buf
        (Printf.sprintf "$var real 64 %s %s $end\n" (identifier i) name))
    signals;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  (* Merge all samples on the tick axis, emitting changes only. *)
  let traces = Array.of_list (List.map snd signals) in
  let n = Array.length traces in
  let cursor = Array.make n 0 in
  let last = Array.make n nan in
  let tick_of t =
    int_of_float (Float.round (t *. 1e12 /. float_of_int timescale_ps))
  in
  let next_time () =
    let best = ref max_int in
    for i = 0 to n - 1 do
      if cursor.(i) < Trace.length traces.(i) then
        best := min !best (tick_of (Trace.time traces.(i) (cursor.(i))))
    done;
    if !best = max_int then None else Some !best
  in
  let rec emit () =
    match next_time () with
    | None -> ()
    | Some tick ->
        let wrote_header = ref false in
        for i = 0 to n - 1 do
          while
            cursor.(i) < Trace.length traces.(i)
            && tick_of (Trace.time traces.(i) (cursor.(i))) = tick
          do
            let v = Trace.value traces.(i) (cursor.(i)) in
            cursor.(i) <- cursor.(i) + 1;
            if v <> last.(i) then begin
              if not !wrote_header then begin
                Buffer.add_string buf (Printf.sprintf "#%d\n" tick);
                wrote_header := true
              end;
              last.(i) <- v;
              Buffer.add_string buf
                (Printf.sprintf "r%.16g %s\n" v (identifier i))
            end
          done
        done;
        emit ()
  in
  emit ();
  Buffer.contents buf

let write_file path ?timescale_ps signals =
  let oc = open_out path in
  output_string oc (to_string ?timescale_ps signals);
  close_out oc
