(** Value-change-dump (VCD) export of recorded traces.

    Lets the waveforms produced by any of the back-ends (analog output
    samples, ADC readings) be inspected in standard viewers (GTKWave
    etc.). Signals are emitted as [real] variables; samples from all
    traces are merged on a common time axis and values are dumped only
    when they change. *)

val to_string : ?timescale_ps:int -> (string * Trace.t) list -> string
(** [to_string signals] renders a VCD document; [timescale_ps] is the
    tick size (default 1000 = 1 ns). Sample times are rounded to the
    nearest tick.
    @raise Invalid_argument on an empty signal list or duplicate
    names. *)

val write_file : string -> ?timescale_ps:int -> (string * Trace.t) list -> unit
(** Write {!to_string} output to a file. *)
