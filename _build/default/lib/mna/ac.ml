module Circuit = Amsvp_netlist.Circuit
module Component = Amsvp_netlist.Component

type point = { freq_hz : float; response : Complex.t }

(* Dense complex LU with partial pivoting (same scheme as Matrix). *)
module Cmatrix = struct
  open Complex

  type t = { n : int; a : Complex.t array }

  let create n = { n; a = Array.make (n * n) zero }

  let add_to m i j v = m.a.((i * m.n) + j) <- add m.a.((i * m.n) + j) v

  let solve m b =
    let n = m.n in
    let a = Array.copy m.a in
    let x = Array.copy b in
    for k = 0 to n - 1 do
      let piv = ref k and mag = ref (norm a.((k * n) + k)) in
      for i = k + 1 to n - 1 do
        let m' = norm a.((i * n) + k) in
        if m' > !mag then begin
          mag := m';
          piv := i
        end
      done;
      if !mag < 1e-300 then invalid_arg "Ac: singular system";
      if !piv <> k then begin
        for j = 0 to n - 1 do
          let t = a.((k * n) + j) in
          a.((k * n) + j) <- a.((!piv * n) + j);
          a.((!piv * n) + j) <- t
        done;
        let t = x.(k) in
        x.(k) <- x.(!piv);
        x.(!piv) <- t
      end;
      for i = k + 1 to n - 1 do
        let f = div a.((i * n) + k) a.((k * n) + k) in
        if f <> zero then begin
          for j = k to n - 1 do
            a.((i * n) + j) <- sub a.((i * n) + j) (mul f a.((k * n) + j))
          done;
          x.(i) <- sub x.(i) (mul f x.(k))
        end
      done
    done;
    for i = n - 1 downto 0 do
      let s = ref x.(i) in
      for j = i + 1 to n - 1 do
        s := sub !s (mul a.((i * n) + j) x.(j))
      done;
      x.(i) <- div !s a.((i * n) + i)
    done;
    x
end

let analyze circuit ~input ~output ~freqs =
  if Circuit.has_pwl circuit then
    invalid_arg "Ac.analyze: no small-signal model for piecewise-linear devices";
  (match Circuit.validate circuit with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Ac.analyze: " ^ msg));
  if not (List.mem input (Circuit.input_signals circuit)) then
    invalid_arg ("Ac.analyze: unknown input signal " ^ input);
  List.iter
    (fun f -> if f <= 0.0 then invalid_arg "Ac.analyze: non-positive frequency")
    freqs;
  let ground = Circuit.ground circuit in
  let node_index = Hashtbl.create 16 in
  List.iteri
    (fun i n -> Hashtbl.add node_index n i)
    (List.filter (fun n -> n <> ground) (Circuit.nodes circuit));
  let nnodes = Hashtbl.length node_index in
  let devices = Circuit.devices circuit in
  let current_index = Hashtbl.create 8 in
  let next = ref nnodes in
  List.iter
    (fun (d : Component.t) ->
      match d.kind with
      | Component.Vsource _ | Component.Inductor _ | Component.Vcvs _ ->
          Hashtbl.add current_index d.name !next;
          incr next
      | Component.Resistor _ | Component.Capacitor _ | Component.Isource _
      | Component.Vccs _ | Component.Pwl_conductance _ ->
          ())
    devices;
  let size = !next in
  let nid n = match Hashtbl.find_opt node_index n with Some i -> i | None -> -1 in
  let solve_at freq_hz =
    let w = 2.0 *. Float.pi *. freq_hz in
    let m = Cmatrix.create size in
    let b = Array.make size Complex.zero in
    let real v = { Complex.re = v; im = 0.0 } in
    let imag v = { Complex.re = 0.0; im = v } in
    let stamp_admittance a bn y =
      if a >= 0 then Cmatrix.add_to m a a y;
      if bn >= 0 then Cmatrix.add_to m bn bn y;
      if a >= 0 && bn >= 0 then begin
        Cmatrix.add_to m a bn (Complex.neg y);
        Cmatrix.add_to m bn a (Complex.neg y)
      end
    in
    List.iter
      (fun (d : Component.t) ->
        let a = nid d.pos and bn = nid d.neg in
        match d.kind with
        | Component.Resistor r -> stamp_admittance a bn (real (1.0 /. r))
        | Component.Capacitor c -> stamp_admittance a bn (imag (w *. c))
        | Component.Vccs { gm; ctrl_pos; ctrl_neg } ->
            let cp = nid ctrl_pos and cn = nid ctrl_neg in
            let add i j v = if i >= 0 && j >= 0 then Cmatrix.add_to m i j v in
            add a cp (real gm);
            add a cn (real (-.gm));
            add bn cp (real (-.gm));
            add bn cn (real gm)
        | Component.Isource src ->
            (* AC excitation: unit phasor on the selected input, zero
               elsewhere. *)
            let amp =
              match src with Component.Input u when u = input -> 1.0 | _ -> 0.0
            in
            if a >= 0 then b.(a) <- Complex.sub b.(a) (real amp);
            if bn >= 0 then b.(bn) <- Complex.add b.(bn) (real amp)
        | Component.Vsource src ->
            let k = Hashtbl.find current_index d.name in
            if a >= 0 then begin
              Cmatrix.add_to m a k Complex.one;
              Cmatrix.add_to m k a Complex.one
            end;
            if bn >= 0 then begin
              Cmatrix.add_to m bn k (real (-1.0));
              Cmatrix.add_to m k bn (real (-1.0))
            end;
            let amp =
              match src with Component.Input u when u = input -> 1.0 | _ -> 0.0
            in
            b.(k) <- real amp
        | Component.Vcvs { gain; ctrl_pos; ctrl_neg } ->
            let k = Hashtbl.find current_index d.name in
            if a >= 0 then begin
              Cmatrix.add_to m a k Complex.one;
              Cmatrix.add_to m k a Complex.one
            end;
            if bn >= 0 then begin
              Cmatrix.add_to m bn k (real (-1.0));
              Cmatrix.add_to m k bn (real (-1.0))
            end;
            let cp = nid ctrl_pos and cn = nid ctrl_neg in
            if cp >= 0 then Cmatrix.add_to m k cp (real (-.gain));
            if cn >= 0 then Cmatrix.add_to m k cn (real gain)
        | Component.Inductor l ->
            let k = Hashtbl.find current_index d.name in
            if a >= 0 then begin
              Cmatrix.add_to m a k Complex.one;
              Cmatrix.add_to m k a Complex.one
            end;
            if bn >= 0 then begin
              Cmatrix.add_to m bn k (real (-1.0));
              Cmatrix.add_to m k bn (real (-1.0))
            end;
            Cmatrix.add_to m k k (imag (-.(w *. l)))
        | Component.Pwl_conductance _ -> assert false)
      devices;
    let x = Cmatrix.solve m b in
    let node_phasor n =
      let i = nid n in
      if i < 0 then Complex.zero else x.(i)
    in
    let response =
      match output.Expr.base with
      | Expr.Potential (p, q) when output.Expr.delay = 0 ->
          Complex.sub (node_phasor p) (node_phasor q)
      | Expr.Flow (name, "") when output.Expr.delay = 0 -> (
          match Hashtbl.find_opt current_index name with
          | Some k -> x.(k)
          | None -> (
              match Circuit.find circuit name with
              | Some { Component.kind = Component.Resistor r; pos; neg; _ } ->
                  Complex.div
                    (Complex.sub (node_phasor pos) (node_phasor neg))
                    { Complex.re = r; im = 0.0 }
              | Some _ | None ->
                  invalid_arg
                    ("Ac.analyze: no phasor available for flow " ^ name)))
      | Expr.Potential _ | Expr.Flow _ | Expr.Signal _ | Expr.Param _ ->
          invalid_arg "Ac.analyze: unsupported output quantity"
    in
    { freq_hz; response }
  in
  List.map solve_at freqs

let magnitude_db p = 20.0 *. log10 (Complex.norm p.response)
let phase_deg p = Complex.arg p.response *. 180.0 /. Float.pi
