(** Sparse LU factorisation for MNA systems.

    The paper notes that "the sparse linear solver and device evaluation
    are two most serious bottlenecks in this kind of simulators"
    (§III-B, citing DATE'15 work on fast sparse solvers). This module
    provides the sparse counterpart of {!Matrix}: rows are kept as
    hash-sparse vectors during elimination, pivots are chosen by a
    Markowitz-style rule (fewest fill candidates) subject to a
    numerical threshold against the column maximum, and the resulting
    factors are stored compressed for repeated forward/backward solves
    — the access pattern of a fixed-timestep linear network. *)

type triplet = int * int * float
(** [(row, col, value)]; duplicate entries accumulate. *)

type lu

exception Singular of int
(** No admissible pivot in the given elimination step. *)

val lu_factor : n:int -> triplet list -> lu
(** Factor the [n x n] matrix given by its nonzero entries.
    @raise Singular on structurally or numerically singular input
    @raise Invalid_argument on out-of-range indices. *)

val lu_solve_into : lu -> b:float array -> x:float array -> unit
(** Allocation-free solve; [b] is not modified, [b] and [x] may not
    alias. *)

val lu_solve : lu -> float array -> float array

val nnz : lu -> int
(** Stored nonzeros of [L] + [U] (fill-in included), for reporting. *)
