type triplet = int * int * float

type lu = {
  n : int;
  perm : int array;  (* permuted row i came from original row perm.(i) *)
  lrows : (int * float) array array;  (* strictly lower, sorted by column *)
  urows : (int * float) array array;  (* strictly upper, sorted by column *)
  diag : float array;
  nnz : int;
}

exception Singular of int

let pivot_threshold = 1e-3

let lu_factor ~n triplets =
  let rows = Array.init n (fun _ -> Hashtbl.create 8) in
  List.iter
    (fun (i, j, v) ->
      if i < 0 || i >= n || j < 0 || j >= n then
        invalid_arg "Sparse.lu_factor: index out of range";
      if v <> 0.0 then
        let cur = try Hashtbl.find rows.(i) j with Not_found -> 0.0 in
        Hashtbl.replace rows.(i) j (cur +. v))
    triplets;
  let perm = Array.init n (fun i -> i) in
  let lrows = Array.make n [] in
  for k = 0 to n - 1 do
    (* Candidate pivots: rows k..n-1 with an entry in column k. The
       numerically admissible one with the sparsest row wins
       (Markowitz-style fill control with threshold pivoting). *)
    let colmax = ref 0.0 in
    for i = k to n - 1 do
      match Hashtbl.find_opt rows.(i) k with
      | Some v -> if abs_float v > !colmax then colmax := abs_float v
      | None -> ()
    done;
    if !colmax < 1e-300 then raise (Singular k);
    let best = ref (-1) and best_nnz = ref max_int in
    for i = k to n - 1 do
      match Hashtbl.find_opt rows.(i) k with
      | Some v
        when abs_float v >= pivot_threshold *. !colmax
             && Hashtbl.length rows.(i) < !best_nnz ->
          best := i;
          best_nnz := Hashtbl.length rows.(i)
      | Some _ | None -> ()
    done;
    let r = !best in
    if r <> k then begin
      let t = rows.(k) in
      rows.(k) <- rows.(r);
      rows.(r) <- t;
      let t = perm.(k) in
      perm.(k) <- perm.(r);
      perm.(r) <- t;
      let t = lrows.(k) in
      lrows.(k) <- lrows.(r);
      lrows.(r) <- t
    end;
    let pivot_row = rows.(k) in
    let pivot = Hashtbl.find pivot_row k in
    for i = k + 1 to n - 1 do
      match Hashtbl.find_opt rows.(i) k with
      | None -> ()
      | Some a_ik ->
          let f = a_ik /. pivot in
          Hashtbl.remove rows.(i) k;
          lrows.(i) <- (k, f) :: lrows.(i);
          Hashtbl.iter
            (fun j v ->
              if j > k then begin
                let cur = try Hashtbl.find rows.(i) j with Not_found -> 0.0 in
                let nv = cur -. (f *. v) in
                if nv = 0.0 then Hashtbl.remove rows.(i) j
                else Hashtbl.replace rows.(i) j nv
              end)
            pivot_row
    done
  done;
  let compress_l l =
    let arr = Array.of_list l in
    Array.sort (fun (a, _) (b, _) -> compare a b) arr;
    arr
  in
  let diag = Array.make n 0.0 in
  let urows =
    Array.init n (fun i ->
        let items =
          Hashtbl.fold
            (fun j v acc -> if j > i then (j, v) :: acc else acc)
            rows.(i) []
        in
        diag.(i) <- (try Hashtbl.find rows.(i) i with Not_found -> 0.0);
        if abs_float diag.(i) < 1e-300 then raise (Singular i);
        let arr = Array.of_list items in
        Array.sort (fun (a, _) (b, _) -> compare a b) arr;
        arr)
  in
  let lrows = Array.map compress_l lrows in
  let nnz =
    n
    + Array.fold_left (fun acc r -> acc + Array.length r) 0 lrows
    + Array.fold_left (fun acc r -> acc + Array.length r) 0 urows
  in
  { n; perm; lrows; urows; diag; nnz }

let lu_solve_into f ~b ~x =
  if Array.length b <> f.n || Array.length x <> f.n then
    invalid_arg "Sparse.lu_solve_into: dimension mismatch";
  (* Forward substitution on the permuted RHS (x doubles as y). *)
  for i = 0 to f.n - 1 do
    let s = ref b.(f.perm.(i)) in
    let row = f.lrows.(i) in
    for e = 0 to Array.length row - 1 do
      let j, v = row.(e) in
      s := !s -. (v *. x.(j))
    done;
    x.(i) <- !s
  done;
  (* Backward substitution. *)
  for i = f.n - 1 downto 0 do
    let s = ref x.(i) in
    let row = f.urows.(i) in
    for e = 0 to Array.length row - 1 do
      let j, v = row.(e) in
      s := !s -. (v *. x.(j))
    done;
    x.(i) <- !s /. f.diag.(i)
  done

let lu_solve f b =
  let x = Array.make f.n 0.0 in
  lu_solve_into f ~b ~x;
  x

let nnz f = f.nnz
