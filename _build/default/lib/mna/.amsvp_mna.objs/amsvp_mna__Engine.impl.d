lib/mna/engine.ml: Amsvp_netlist Amsvp_util Array Expr Float Hashtbl List Matrix Sparse System
