lib/mna/engine.mli: Amsvp_netlist Amsvp_util Expr
