lib/mna/system.mli: Amsvp_netlist Expr Matrix
