lib/mna/sparse.mli:
