lib/mna/dc.ml: Amsvp_netlist Array Expr Format List Matrix System
