lib/mna/ac.mli: Amsvp_netlist Complex Expr
