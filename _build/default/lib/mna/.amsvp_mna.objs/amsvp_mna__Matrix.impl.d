lib/mna/matrix.ml: Array
