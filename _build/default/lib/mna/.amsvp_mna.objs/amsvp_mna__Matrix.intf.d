lib/mna/matrix.mli:
