lib/mna/ac.ml: Amsvp_netlist Array Complex Expr Float Hashtbl List
