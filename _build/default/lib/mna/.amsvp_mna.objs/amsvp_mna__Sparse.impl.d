lib/mna/sparse.ml: Array Hashtbl List
