lib/mna/dc.mli: Amsvp_netlist Expr Format
