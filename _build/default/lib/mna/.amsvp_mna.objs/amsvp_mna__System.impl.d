lib/mna/system.ml: Amsvp_netlist Array Expr Hashtbl List Matrix
