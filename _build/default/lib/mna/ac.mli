(** Small-signal AC analysis of a linear network.

    Solves the complex MNA system [(G + jωC) x = b] at each requested
    frequency, with a unit AC excitation on one chosen input source.
    This is the frequency-domain reference the abstraction is checked
    against: the discrete-time model's measured gain must follow
    [|H(jω)|] of the network for frequencies well below 1/dt. *)

type point = {
  freq_hz : float;
  response : Complex.t;  (** H(jω) of the output quantity *)
}

val analyze :
  Amsvp_netlist.Circuit.t ->
  input:string ->
  output:Expr.var ->
  freqs:float list ->
  point list
(** [analyze ckt ~input ~output ~freqs] drives the voltage source
    carrying input signal [input] with a unit phasor (all other
    sources at zero) and returns the transfer function at each
    frequency. The output is a node-pair potential or a branch flow
    carried by a current unknown.
    @raise Invalid_argument on piecewise-linear networks (no small-
    signal model), unknown inputs or non-positive frequencies. *)

val magnitude_db : point -> float
val phase_deg : point -> float
