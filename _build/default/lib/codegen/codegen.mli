(** Step 4 — Code generation (paper §IV-D).

    Emits a source-level rendering of a solved signal-flow program in
    the three target languages of the paper: plain C++ (Fig. 7.b),
    SystemC-DE (an [SC_MODULE] clocked at the model timestep) and
    SystemC-AMS/TDF (an [SCA_TDF_MODULE] with [set_timestep] and
    [processing]). The emitted text is a faithful rendering of the
    update rules the OCaml back-ends execute; golden tests pin its
    shape. *)

type target = Cpp | Systemc_de | Systemc_ams_tdf

val target_name : target -> string
(** ["C++"], ["SC-DE"], ["SC-AMS/TDF"] — the labels used in the
    paper's tables. *)

val emit : target -> Amsvp_sf.Sfprogram.t -> string
(** Complete compilation unit for the given target. *)

val emit_step_body : Amsvp_sf.Sfprogram.t -> string
(** Just the update statements plus the state rotation — the body
    shared by all three targets (and the code shown in Fig. 7.b). *)
