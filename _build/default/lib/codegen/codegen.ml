module Sfprogram = Amsvp_sf.Sfprogram

type target = Cpp | Systemc_de | Systemc_ams_tdf

let target_name = function
  | Cpp -> "C++"
  | Systemc_de -> "SC-DE"
  | Systemc_ams_tdf -> "SC-AMS/TDF"

let sanitize_ident s =
  String.map
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
      then c
      else '_')
    s

(* Every delayed sample of a quantity becomes a state member; the input
   and target quantities of the current step are locals (C++/DE) or
   port reads (TDF). *)
let history_members (p : Sfprogram.t) =
  let seen = Hashtbl.create 16 in
  let members = ref [] in
  List.iter
    (fun (a : Sfprogram.assignment) ->
      Expr.Var_set.iter
        (fun v ->
          if v.Expr.delay >= 1 then begin
            (* All levels up to the deepest are needed for rotation. *)
            for d = 1 to v.Expr.delay do
              let dv = { v with Expr.delay = d } in
              let key = Expr.var_c_name dv in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.add seen key ();
                members := dv :: !members
              end
            done
          end)
        (Expr.vars a.Sfprogram.expr))
    p.Sfprogram.assignments;
  List.rev !members

(* Rotation statements, deepest level first per base quantity. *)
let rotations p =
  let members = history_members p in
  let by_base = Hashtbl.create 16 in
  List.iter
    (fun (v : Expr.var) ->
      let base = { v with Expr.delay = 0 } in
      let key = Expr.var_c_name base in
      let d =
        match Hashtbl.find_opt by_base key with
        | Some (_, d) -> max d v.Expr.delay
        | None -> v.Expr.delay
      in
      Hashtbl.replace by_base key (base, d))
    members;
  Hashtbl.fold (fun _ (base, depth) acc -> (base, depth) :: acc) by_base []
  |> List.sort (fun (a, _) (b, _) ->
         String.compare (Expr.var_c_name a) (Expr.var_c_name b))
  |> List.concat_map (fun (base, depth) ->
         List.init depth (fun i ->
             let k = depth - i in
             Printf.sprintf "%s = %s;"
               (Expr.var_c_name { base with Expr.delay = k })
               (Expr.var_c_name { base with Expr.delay = k - 1 })))

let emit_step_body p =
  let buf = Buffer.create 256 in
  List.iter
    (fun (a : Sfprogram.assignment) ->
      Buffer.add_string buf
        (Printf.sprintf "%s = %s;\n"
           (Expr.var_c_name a.Sfprogram.target)
           (Expr.to_c ~name:Expr.var_c_name a.Sfprogram.expr)))
    p.Sfprogram.assignments;
  List.iter
    (fun line -> Buffer.add_string buf (line ^ "\n"))
    (rotations p);
  Buffer.contents buf

let indent n text =
  let pad = String.make n ' ' in
  String.split_on_char '\n' text
  |> List.map (fun l -> if l = "" then l else pad ^ l)
  |> String.concat "\n"

let input_c_name s = Expr.var_c_name (Expr.signal s)

let decl_members p =
  let buf = Buffer.create 128 in
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "  double %s = 0.0;\n" (Expr.var_c_name v)))
    (history_members p);
  List.iter
    (fun (a : Sfprogram.assignment) ->
      Buffer.add_string buf
        (Printf.sprintf "  double %s = 0.0;\n"
           (Expr.var_c_name a.Sfprogram.target)))
    p.Sfprogram.assignments;
  Buffer.contents buf

let header (p : Sfprogram.t) target =
  Printf.sprintf
    "// %s model generated from '%s' by the abstraction flow\n\
     // (conservative -> signal-flow, discrete time, dt = %g s)\n"
    (target_name target) p.Sfprogram.name p.Sfprogram.dt

let emit_cpp (p : Sfprogram.t) =
  let cname = sanitize_ident p.Sfprogram.name in
  let params =
    String.concat ", "
      (List.map (fun s -> "double " ^ input_c_name s) p.Sfprogram.inputs)
  in
  let outputs =
    String.concat "\n"
      (List.map
         (fun o ->
           Printf.sprintf "  double %s_value() const { return %s; }"
             (sanitize_ident (Expr.var_c_name o))
             (Expr.var_c_name o))
         p.Sfprogram.outputs)
  in
  String.concat ""
    [
      header p Cpp;
      Printf.sprintf "class %s {\npublic:\n" cname;
      decl_members p;
      Printf.sprintf "\n  void step(%s) {\n" params;
      indent 4 (emit_step_body p);
      "  }\n\n";
      outputs;
      "\n};\n";
    ]

let emit_systemc_de (p : Sfprogram.t) =
  let cname = sanitize_ident p.Sfprogram.name in
  let in_ports =
    String.concat ""
      (List.map
         (fun s -> Printf.sprintf "  sc_core::sc_in<double> %s;\n" (input_c_name s))
         p.Sfprogram.inputs)
  in
  let out_ports =
    String.concat ""
      (List.map
         (fun o ->
           Printf.sprintf "  sc_core::sc_out<double> %s_out;\n"
             (Expr.var_c_name o))
         p.Sfprogram.outputs)
  in
  let reads =
    String.concat ""
      (List.map
         (fun s ->
           Printf.sprintf "    const double %s_v = %s.read();\n"
             (input_c_name s) (input_c_name s))
         p.Sfprogram.inputs)
  in
  (* In the DE module, inputs are read from ports: rename in the body. *)
  let body =
    let renamed =
      List.map
        (fun (a : Sfprogram.assignment) ->
          let expr =
            Expr.subst
              (fun v ->
                match v.Expr.base with
                | Expr.Signal s
                  when v.Expr.delay = 0 && List.mem s p.Sfprogram.inputs ->
                    Some (Expr.var (Expr.signal (s ^ "_v")))
                | _ -> None)
              a.Sfprogram.expr
          in
          { a with Sfprogram.expr })
        p.Sfprogram.assignments
    in
    emit_step_body { p with Sfprogram.assignments = renamed }
  in
  let writes =
    String.concat ""
      (List.map
         (fun o ->
           Printf.sprintf "    %s_out.write(%s);\n" (Expr.var_c_name o)
             (Expr.var_c_name o))
         p.Sfprogram.outputs)
  in
  String.concat ""
    [
      header p Systemc_de;
      Printf.sprintf "SC_MODULE(%s) {\n" cname;
      in_ports;
      out_ports;
      decl_members p;
      "\n  void step() {\n";
      reads;
      indent 4 body;
      writes;
      Printf.sprintf
        "    next_trigger(sc_core::sc_time(%g, sc_core::SC_SEC));\n"
        p.Sfprogram.dt;
      "  }\n\n";
      Printf.sprintf "  SC_CTOR(%s) {\n    SC_METHOD(step);\n  }\n};\n" cname;
    ]

let emit_systemc_ams_tdf (p : Sfprogram.t) =
  let cname = sanitize_ident p.Sfprogram.name in
  let in_ports =
    String.concat ""
      (List.map
         (fun s -> Printf.sprintf "  sca_tdf::sca_in<double> %s;\n" (input_c_name s))
         p.Sfprogram.inputs)
  in
  let out_ports =
    String.concat ""
      (List.map
         (fun o ->
           Printf.sprintf "  sca_tdf::sca_out<double> %s_out;\n"
             (Expr.var_c_name o))
         p.Sfprogram.outputs)
  in
  let reads =
    String.concat ""
      (List.map
         (fun s ->
           Printf.sprintf "    const double %s_v = %s.read();\n"
             (input_c_name s) (input_c_name s))
         p.Sfprogram.inputs)
  in
  let body =
    let renamed =
      List.map
        (fun (a : Sfprogram.assignment) ->
          let expr =
            Expr.subst
              (fun v ->
                match v.Expr.base with
                | Expr.Signal s
                  when v.Expr.delay = 0 && List.mem s p.Sfprogram.inputs ->
                    Some (Expr.var (Expr.signal (s ^ "_v")))
                | _ -> None)
              a.Sfprogram.expr
          in
          { a with Sfprogram.expr })
        p.Sfprogram.assignments
    in
    emit_step_body { p with Sfprogram.assignments = renamed }
  in
  let writes =
    String.concat ""
      (List.map
         (fun o ->
           Printf.sprintf "    %s_out.write(%s);\n" (Expr.var_c_name o)
             (Expr.var_c_name o))
         p.Sfprogram.outputs)
  in
  String.concat ""
    [
      header p Systemc_ams_tdf;
      Printf.sprintf "SCA_TDF_MODULE(%s) {\n" cname;
      in_ports;
      out_ports;
      decl_members p;
      "\n  void set_attributes() {\n";
      Printf.sprintf "    set_timestep(%g, sc_core::SC_SEC);\n" p.Sfprogram.dt;
      "  }\n\n  void processing() {\n";
      reads;
      indent 4 body;
      writes;
      "  }\n\n";
      Printf.sprintf "  SCA_CTOR(%s) {}\n};\n" cname;
    ]

let emit target p =
  match target with
  | Cpp -> emit_cpp p
  | Systemc_de -> emit_systemc_de p
  | Systemc_ams_tdf -> emit_systemc_ams_tdf p
