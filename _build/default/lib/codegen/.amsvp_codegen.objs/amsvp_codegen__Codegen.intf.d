lib/codegen/codegen.mli: Amsvp_sf
