lib/codegen/codegen.ml: Amsvp_sf Buffer Expr Hashtbl List Printf String
