(* Filter-design exploration with the abstraction flow: sweep the order
   of the RC ladder, compare the abstracted models against the
   conservative reference for accuracy, cost and frequency response.

   Run with: dune exec examples/filter_design.exe *)

module Circuits = Amsvp_netlist.Circuits
module Engine = Amsvp_mna.Engine
module Flow = Amsvp_core.Flow
module Sfprogram = Amsvp_sf.Sfprogram
module Stimulus = Amsvp_util.Stimulus
module Metrics = Amsvp_util.Metrics
module Trace = Amsvp_util.Trace

let time f =
  let t0 = Unix.gettimeofday () in
  let y = f () in
  (y, Unix.gettimeofday () -. t0)

(* Steady-state amplitude of the filter response to a sinusoid, from
   the last few periods of a transient run. *)
let gain_at runner ~inputs_order ~freq ~dt =
  let stim = Stimulus.sine ~freq ~amplitude:1.0 () in
  let stimuli = Array.map (fun _ -> stim) inputs_order in
  let periods = 12.0 in
  let t_stop = periods /. freq in
  let tr = Sfprogram.Runner.run runner ~stimuli ~t_stop () in
  (* Peak over the last third of the run. *)
  let n = Trace.length tr in
  let peak = ref 0.0 in
  for i = 2 * n / 3 to n - 1 do
    peak := max !peak (abs_float (Trace.value tr i))
  done;
  ignore dt;
  !peak

let () =
  print_endline "RC-ladder design sweep: abstraction cost and accuracy";
  print_endline "";
  Printf.printf "%5s %6s %6s | %10s | %12s | %12s\n" "order" "nodes" "defs"
    "abs.time" "NRMSE vs ref" "cutoff check";
  let dt = 1e-6 in
  List.iter
    (fun n ->
      let tc = Circuits.rc_ladder n in
      let rep, t_abs = time (fun () -> Flow.abstract_testcase tc ~dt) in
      (* Accuracy against the fine conservative reference. *)
      let runner = Sfprogram.Runner.create rep.Flow.program in
      let t_stop = 4e-3 in
      let mine =
        Sfprogram.Runner.run runner
          ~stimuli:[| Stimulus.square ~period:1e-3 ~low:0.0 ~high:1.0 |]
          ~t_stop ()
      in
      let reference = Engine.run_testcase_spice tc ~dt ~t_stop in
      let err =
        Metrics.nrmse_traces ~reference:reference.Engine.trace mine ~t0:0.0
          ~dt:(t_stop /. 1000.0) ~n:998
      in
      (* Single-pole sanity: at f = 1/(2 pi R C) a one-stage ladder
         attenuates to ~0.707. *)
      let fc = 1.0 /. (2.0 *. Float.pi *. 5e3 *. 25e-9) in
      let g =
        gain_at
          (Sfprogram.Runner.create rep.Flow.program)
          ~inputs_order:[| () |] ~freq:fc ~dt
      in
      Printf.printf "%5d %6d %6d | %8.2f ms | %12.2e | |H(fc)|=%.3f\n" n
        rep.Flow.nodes rep.Flow.definitions (t_abs *. 1e3) err g)
    [ 1; 2; 4; 8; 12; 16; 20; 24; 32 ];
  print_endline "";
  print_endline
    "frequency response of the abstracted RC4 (sine sweep, tight loop):";
  let rep = Flow.abstract_testcase (Circuits.rc_ladder 4) ~dt in
  List.iter
    (fun freq ->
      let g =
        gain_at
          (Sfprogram.Runner.create rep.Flow.program)
          ~inputs_order:[| () |] ~freq ~dt
      in
      let bars = int_of_float (g *. 50.0) in
      Printf.printf "  f=%8.0f Hz |H|=%6.3f %s\n" freq g (String.make (max bars 0) '#'))
    [ 50.; 100.; 200.; 400.; 800.; 1600.; 3200.; 6400.; 12800. ]
