(* Piecewise-linear extension (paper Section III-C): abstract a
   half-wave rectifier whose diode is a two-segment PWL conductance,
   compare the generated region-switching model with the Newton-based
   SPICE reference, and export the waveforms as a VCD file.

   Run with: dune exec examples/rectifier.exe *)

module Circuit = Amsvp_netlist.Circuit
module Component = Amsvp_netlist.Component
module Engine = Amsvp_mna.Engine
module Flow = Amsvp_core.Flow
module Codegen = Amsvp_codegen.Codegen
module Sfprogram = Amsvp_sf.Sfprogram
module Stimulus = Amsvp_util.Stimulus
module Metrics = Amsvp_util.Metrics
module Vcd = Amsvp_util.Vcd

let () =
  (* A 1 kHz sine through a series resistor into a PWL diode clamp. *)
  let ckt = Circuit.create () in
  Circuit.add_vsource ckt ~name:"vin" ~pos:"in" ~neg:"gnd" (Component.Input "in");
  Circuit.add_resistor ckt ~name:"r1" ~pos:"in" ~neg:"a" 1.0e3;
  Circuit.add_pwl_conductance ckt ~name:"d1" ~pos:"a" ~neg:"gnd"
    ~g_on:(1.0 /. 100.0) ~g_off:1e-6 ~threshold:0.0;
  Format.printf "%a@.@." Circuit.pp ckt;

  let dt = 1e-7 and t_stop = 3e-3 in
  let out = Expr.potential "a" "gnd" in
  let rep = Flow.abstract_circuit ~name:"rectifier" ckt ~outputs:[ out ] ~dt in
  print_endline
    "Generated region-switching model (one solved linear system per PWL \
     region, selected on the previous step's values):";
  print_string (Codegen.emit Codegen.Cpp rep.program);
  print_newline ();

  let sine = Stimulus.sine ~freq:1e3 ~amplitude:1.0 () in
  let runner = Sfprogram.Runner.create rep.program in
  let mine = Sfprogram.Runner.run runner ~stimuli:[| sine |] ~t_stop () in
  let reference =
    Engine.spice_like ~substeps:1 ~iterations:3 ckt ~inputs:[ ("in", sine) ]
      ~output:out ~dt ~t_stop
  in
  let err =
    Metrics.nrmse_traces ~reference:reference.Engine.trace mine ~t0:0.0
      ~dt:(t_stop /. 1000.0) ~n:999
  in
  Printf.printf "NRMSE vs Newton-based conservative reference: %.3g\n" err;

  let stim_trace =
    Amsvp_util.Trace.of_fun sine ~t0:0.0 ~dt:(t_stop /. 600.0) ~n:600
  in
  let path = Filename.concat (Filename.get_temp_dir_name ()) "rectifier.vcd" in
  Vcd.write_file path
    [ ("vin", stim_trace); ("vout_abstracted", mine);
      ("vout_reference", reference.Engine.trace) ];
  Printf.printf "waveforms written to %s (open with any VCD viewer)\n" path;

  (* ASCII scope of the clamping behaviour. *)
  print_endline "\n  t (us)   vin      vout";
  for i = 0 to 30 do
    let t = float_of_int i *. 1e-4 /. 3.0 +. 2e-3 in
    let vi = sine t and vo = Amsvp_util.Trace.sample_at mine t in
    let col v = int_of_float ((v +. 1.1) *. 20.0) in
    let line = Bytes.make 46 ' ' in
    Bytes.set line (min 45 (max 0 (col vi))) '*';
    Bytes.set line (min 45 (max 0 (col vo))) 'o';
    Printf.printf "%8.1f %+.3f  %+.3f |%s|\n" (t *. 1e6) vi vo
      (Bytes.to_string line)
  done
