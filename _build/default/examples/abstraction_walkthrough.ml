(* A step-by-step walkthrough of the abstraction methodology (paper
   Section IV and Figs. 4-7), shown on the operational amplifier of
   Fig. 8.b.

   Run with: dune exec examples/abstraction_walkthrough.exe *)

module Circuits = Amsvp_netlist.Circuits
module Circuit = Amsvp_netlist.Circuit
module Graph = Amsvp_netlist.Graph
module Acquisition = Amsvp_core.Acquisition
module Enrich = Amsvp_core.Enrich
module Assemble = Amsvp_core.Assemble
module Solve = Amsvp_core.Solve
module Eqmap = Amsvp_core.Eqmap
module Codegen = Amsvp_codegen.Codegen

let banner title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let () =
  let dt = 50e-9 in
  let tc = Circuits.opamp () in
  banner "The conservative model (Fig. 8.b)";
  Format.printf "%a@." Circuit.pp tc.Circuits.circuit;

  (* The output of interest V(out,gnd) is not a branch potential of the
     OA network: the flow observes it through an inserted zero-current
     probe (an ideal voltmeter). The op-amp sensing pair (ninv, gnd) is
     already covered by the Rin branch. *)
  let circuit =
    Amsvp_core.Flow.insert_probes tc.Circuits.circuit
      ~outputs:[ tc.Circuits.output ]
  in
  banner "Step 1 - Acquisition: dipole equations and the graph G = (N,B)";
  let acq = Acquisition.of_circuit circuit in
  Format.printf "%a@." Graph.pp acq.Acquisition.graph;
  List.iter (fun e -> Format.printf "  %a@." Eqn.pp e) acq.Acquisition.dipoles;

  banner "Step 2 - Enrichment: Kirchhoff laws + solved variants (Fig. 5)";
  let map, stats = Enrich.enrich acq in
  Printf.printf
    "%d dipole + %d KCL + %d KVL classes, %d solved variants in the multimap\n"
    stats.Enrich.dipole_classes stats.Enrich.kcl_classes
    stats.Enrich.kvl_classes stats.Enrich.variants;
  Format.printf "%a@." Eqmap.pp map;

  banner "Step 3 - Assemble: one definition per quantity in the cone (Alg. 2)";
  let asm =
    Assemble.assemble map ~inputs:[ "in" ] ~outputs:[ tc.Circuits.output ]
  in
  List.iter
    (fun d -> Format.printf "  %a@." Assemble.pp_definition d)
    asm.Assemble.defs;
  Printf.printf
    "(the sub-set of consumed equation classes is the gray region of Fig. 3)\n";

  banner "The assembled tree for V(out,gnd) (Fig. 6)";
  Format.printf "%a@." Expr.pp_tree (Assemble.inline_tree asm tc.Circuits.output);

  banner "Solution of the linear equations (Fig. 7.a)";
  List.iter
    (fun (v, e) -> Format.printf "  %s := %s@." (Expr.var_name v) (Expr.to_string e))
    (Solve.solved_assignments ~dt asm);

  banner "Step 4 - Code generation (Fig. 7.b)";
  let program = Solve.solve ~name:"OA" ~dt asm in
  print_string (Codegen.emit Codegen.Cpp program);
  print_newline ();
  print_string (Codegen.emit Codegen.Systemc_de program)
