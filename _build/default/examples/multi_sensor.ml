(* A holistic smart system with several analog components (Fig. 1 shows
   sensors *and* actuators around the digital core): two abstracted
   front-ends — the OA active filter and an RC4 anti-aliasing chain —
   feed two ADC channels; the MIPS firmware fuses both readings and
   reports over the UART. Everything runs in one discrete-event kernel:
   no co-simulation. Kernel signals are traced to a VCD file
   (the sc_trace equivalent).

   Run with: dune exec examples/multi_sensor.exe *)

module De = Amsvp_sysc.De
module Circuits = Amsvp_netlist.Circuits
module Flow = Amsvp_core.Flow
module Sfprogram = Amsvp_sf.Sfprogram
module Stimulus = Amsvp_util.Stimulus
module Bus = Amsvp_vp.Bus
module Iss = Amsvp_vp.Iss
module Asm = Amsvp_vp.Asm

let firmware =
  {asm|
        li   $t0, 0x10001000    # ADC 0: OA front-end
        li   $t1, 0x10002000    # ADC 1: RC4 chain
        li   $t2, 0x10000000    # UART
        li   $s0, 0             # last sequence number of ADC 0
        li   $s1, 0             # fused-reading counter
poll:
        lw   $t3, 4($t0)
        beq  $t3, $s0, poll
        move $s0, $t3
        lw   $t4, 0($t0)        # OA sample (microvolts)
        lw   $t5, 0($t1)        # RC4 sample
        subu $t6, $t5, $t4      # fused: difference of the two channels
        addiu $s1, $s1, 1
        andi $t7, $s1, 127
        bne  $t7, $zero, poll
        sra  $t8, $t6, 16
        andi $t8, $t8, 255
        sw   $t8, 0($t2)        # report byte
        j    poll
|asm}

let () =
  let dt = 1e-7 and t_stop = 3e-3 in
  let kernel = De.create () in
  let dt_ps = De.ps_of_seconds dt in
  let until_ps = De.ps_of_seconds t_stop in

  (* Digital core. *)
  let bus = Bus.create () in
  Bus.Ram.attach bus ~base:0 ~size_words:16384;
  let uart = Bus.Uart.attach bus ~base:0x1000_0000 in
  let adc0 = Bus.Adc.attach bus ~base:0x1000_1000 in
  let adc1 = Bus.Adc.attach bus ~base:0x1000_2000 in
  Bus.Ram.load bus ~base:0 (Asm.assemble firmware);
  let cpu = Iss.create (Bus.iss_bus bus) in

  (* Two abstracted analog components, each its own DE process. *)
  let attach_analog name (tc : Circuits.testcase) adc sig_out =
    let rep = Flow.abstract_testcase tc ~dt in
    let runner = Sfprogram.Runner.create rep.Flow.program in
    let stims =
      Array.of_list
        (List.map
           (fun n -> List.assoc n tc.Circuits.stimuli)
           rep.Flow.program.Sfprogram.inputs)
    in
    let inputs = Array.make (Array.length stims) 0.0 in
    let step_index = ref 0 in
    let tick = De.Event.create kernel (name ^ ".tick") in
    let proc =
      De.spawn kernel ~name (fun () ->
          incr step_index;
          let t = float_of_int !step_index *. dt in
          Array.iteri (fun i f -> inputs.(i) <- f t) stims;
          Sfprogram.Runner.step runner ~inputs;
          let out = Sfprogram.Runner.output runner 0 in
          Bus.Adc.set_sample adc ~volts:out;
          De.Signal.write sig_out out;
          if De.now_ps kernel + dt_ps <= until_ps then
            De.Event.notify_delayed tick ~delay_ps:dt_ps)
    in
    De.Event.sensitize proc tick;
    De.Event.notify_delayed tick ~delay_ps:dt_ps;
    rep
  in
  let oa_sig = De.Signal.float_signal kernel ~name:"oa_out" 0.0 in
  let rc_sig = De.Signal.float_signal kernel ~name:"rc4_out" 0.0 in
  let rep0 = attach_analog "oa" (Circuits.opamp ()) adc0 oa_sig in
  let rep1 = attach_analog "rc4" (Circuits.rc_ladder 4) adc1 rc_sig in
  Printf.printf
    "two analog components abstracted: OA (%d definitions), RC4 (%d \
     definitions); both integrated in one kernel\n"
    rep0.Flow.definitions rep1.Flow.definitions;

  (* CPU, one instruction per 50 ns (20 MHz). *)
  let cpu_ev = De.Event.create kernel "cpu.tick" in
  let cpu_proc =
    De.spawn kernel ~name:"cpu" (fun () ->
        Iss.step cpu;
        if De.now_ps kernel + 50_000 <= until_ps then
          De.Event.notify_delayed cpu_ev ~delay_ps:50_000)
  in
  De.Event.sensitize cpu_proc cpu_ev;
  De.Event.notify_delayed cpu_ev ~delay_ps:50_000;

  (* sc_trace-style waveform recording of the two analog outputs. *)
  let rec_ = De.Tracing.create kernel in
  De.Tracing.watch rec_ ~name:"oa_out" oa_sig;
  De.Tracing.watch rec_ ~name:"rc4_out" rc_sig;

  De.run_until kernel ~ps:until_ps;

  Printf.printf "simulated %.1f ms: %d instructions, %d+%d analog samples\n"
    (t_stop *. 1e3)
    (Iss.instructions_retired cpu)
    (Bus.Adc.samples_pushed adc0) (Bus.Adc.samples_pushed adc1);
  let bytes = Bus.Uart.output uart in
  Printf.printf "uart (%d fused reports): %s\n" (String.length bytes)
    (String.concat " "
       (List.of_seq
          (Seq.map (fun c -> Printf.sprintf "%02x" (Char.code c))
             (String.to_seq bytes))));
  let path = Filename.concat (Filename.get_temp_dir_name ()) "multi_sensor.vcd" in
  let oc = open_out path in
  output_string oc (De.Tracing.to_vcd rec_);
  close_out oc;
  Printf.printf "kernel waveforms traced to %s\n" path;
  let st = De.stats kernel in
  Printf.printf "kernel: %d activations, %d delta cycles, %d signal updates\n"
    st.De.activations st.De.delta_cycles st.De.signal_updates
