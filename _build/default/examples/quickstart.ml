(* Quickstart: from a Verilog-AMS source to an integrated C++-style
   model in a dozen lines.

   Run with: dune exec examples/quickstart.exe *)

module Elaborate = Amsvp_vams.Elaborate
module Sources = Amsvp_vams.Sources
module Codegen = Amsvp_codegen.Codegen
module Sfprogram = Amsvp_sf.Sfprogram
module Stimulus = Amsvp_util.Stimulus
module Trace = Amsvp_util.Trace

let () =
  (* 1. A Verilog-AMS description of an analog component: the paper's
     first-order RC filter, written structurally from dipole
     primitives. *)
  let source = Sources.rc_ladder 1 in
  print_endline "=== Verilog-AMS input ===";
  print_string source;

  (* 2. Run the abstraction flow: parse, elaborate, acquire the dipole
     equations, enrich with Kirchhoff's laws, assemble the cone of
     influence of V(out,gnd), solve the linear equations, and get an
     executable signal-flow program. *)
  let dt = 50e-9 in
  let report =
    Elaborate.parse_and_abstract source ~top:"rc1"
      ~outputs:[ Expr.potential "out" "gnd" ]
      ~dt
  in
  Format.printf "@.=== Abstraction report ===@.%a@." Amsvp_core.Flow.pp_report
    report;

  (* 3. Emit the integration targets of the paper (Section IV-D). *)
  print_endline "=== Generated C++ (Fig. 7.b) ===";
  print_string (Codegen.emit Codegen.Cpp report.program);
  print_endline "\n=== Generated SystemC-AMS/TDF ===";
  print_string (Codegen.emit Codegen.Systemc_ams_tdf report.program);

  (* 4. Simulate the abstracted model against a square wave and report
     a few output samples. *)
  let runner = Sfprogram.Runner.create report.program in
  let square = Stimulus.square ~period:1e-3 ~low:0.0 ~high:1.0 in
  let trace = Sfprogram.Runner.run runner ~stimuli:[| square |] ~t_stop:2e-3 () in
  print_endline "\n=== Simulated step response (tau = 125 us) ===";
  List.iter
    (fun t ->
      Printf.printf "  V(out,gnd)(t=%6.0f us) = %.6f V\n" (t *. 1e6)
        (Trace.sample_at trace t))
    [ 50e-6; 125e-6; 250e-6; 500e-6; 550e-6; 625e-6; 1000e-6 ]
