examples/quickstart.mli:
