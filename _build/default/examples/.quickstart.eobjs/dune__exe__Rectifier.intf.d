examples/rectifier.mli:
