examples/smart_system.ml: Amsvp_core Amsvp_netlist Amsvp_util Amsvp_vp Char List Printf Seq String Unix
