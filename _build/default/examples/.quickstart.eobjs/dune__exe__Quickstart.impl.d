examples/quickstart.ml: Amsvp_codegen Amsvp_core Amsvp_sf Amsvp_util Amsvp_vams Expr Format List Printf
