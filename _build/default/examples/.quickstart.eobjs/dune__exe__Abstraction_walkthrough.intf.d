examples/abstraction_walkthrough.mli:
