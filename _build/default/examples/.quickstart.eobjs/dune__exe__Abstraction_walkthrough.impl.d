examples/abstraction_walkthrough.ml: Amsvp_codegen Amsvp_core Amsvp_netlist Eqn Expr Format List Printf String
