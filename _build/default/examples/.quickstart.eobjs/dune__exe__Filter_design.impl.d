examples/filter_design.ml: Amsvp_core Amsvp_mna Amsvp_netlist Amsvp_sf Amsvp_util Array Float List Printf String Unix
