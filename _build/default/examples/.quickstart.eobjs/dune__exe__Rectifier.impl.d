examples/rectifier.ml: Amsvp_codegen Amsvp_core Amsvp_mna Amsvp_netlist Amsvp_sf Amsvp_util Bytes Expr Filename Format Printf
