examples/smart_system.mli:
