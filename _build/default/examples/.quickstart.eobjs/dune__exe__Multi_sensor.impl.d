examples/multi_sensor.ml: Amsvp_core Amsvp_netlist Amsvp_sf Amsvp_sysc Amsvp_util Amsvp_vp Array Char Filename List Printf Seq String
