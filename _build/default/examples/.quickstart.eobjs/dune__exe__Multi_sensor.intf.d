examples/multi_sensor.mli:
