(* Differential tests for the fast-fidelity MNA engine.

   [`Fast] trades the paper's fixed re-stamp/re-factor budget for
   sparse symbolic reuse, Newton early-exit and adaptive substepping;
   these tests pin down the contract that buys the speedup:

   - [`Paper] (the default) stays bit-identical to the seed engine,
     sample for sample and counter for counter;
   - [`Fast] traces agree with [`Paper] within the health-watchdog
     NRMSE budget on the paper circuits and on randomly generated
     RC / RLC / rectifier networks;
   - the sparse back-end (direct, and symbolic analyze + numeric
     refactor) agrees with the dense solver to rounding, and the
     stale-pivot escape hatch raises and recovers as documented;
   - singular and near-singular networks fail with the same
     [Matrix.Singular] diagnostics under either fidelity;
   - telemetry: a [`Fast] run never reports wasted Newton passes, and
     enabling the journal does not change a single sample. *)

module Matrix = Amsvp_mna.Matrix
module Sparse = Amsvp_mna.Sparse
module Dc = Amsvp_mna.Dc
module Engine = Amsvp_mna.Engine
module Circuit = Amsvp_netlist.Circuit
module Component = Amsvp_netlist.Component
module Circuits = Amsvp_netlist.Circuits
module Trace = Amsvp_util.Trace
module Stimulus = Amsvp_util.Stimulus
module Metrics = Amsvp_util.Metrics
module Journal = Amsvp_obs.Journal

let checkf tol = Alcotest.(check (float tol))
let ulp_ok a b = Int64.compare (Metrics.ulp_distance a b) 1L <= 0

let check_traces label a b =
  Alcotest.(check int)
    (label ^ ": sample count") (Trace.length a) (Trace.length b);
  for i = 0 to Trace.length a - 1 do
    let va = Trace.value a i and vb = Trace.value b i in
    if not (ulp_ok va vb) then
      Alcotest.failf "%s: sample %d differs: %h vs %h (t=%.9g)" label i va vb
        (Trace.time a i)
  done

(* The engine-agreement budget of the sweep health watchdog
   (test_spice_matches_eln uses the same 5e-3 figure). *)
let nrmse_budget = 5e-3

let nrmse_fast_vs_paper ?substeps ?iterations (tc : Circuits.testcase) ~dt
    ~t_stop =
  let run fidelity =
    Engine.run_testcase_spice ?substeps ?iterations ~fidelity tc ~dt ~t_stop
  in
  let paper = run `Paper and fast = run `Fast in
  ( Metrics.nrmse_traces ~reference:paper.Engine.trace fast.Engine.trace
      ~t0:0.0 ~dt:(t_stop /. 500.0) ~n:499,
    paper,
    fast )

(* ---- `Paper bit-identity with the seed engine ---- *)

let test_paper_bit_identity () =
  let tc = Circuits.rc_ladder 1 in
  let dflt =
    Engine.run_testcase_spice ~substeps:4 ~iterations:2 tc ~dt:1e-5
      ~t_stop:1e-3
  in
  let paper =
    Engine.run_testcase_spice ~substeps:4 ~iterations:2 ~fidelity:`Paper tc
      ~dt:1e-5 ~t_stop:1e-3
  in
  check_traces "default vs explicit `Paper" dflt.trace paper.trace;
  (* The exact seed cost model: every Newton pass of every substep
     re-stamps and re-factors. *)
  Alcotest.(check int) "steps" 100 paper.stats.steps;
  Alcotest.(check int) "solves" 800 paper.stats.solves;
  Alcotest.(check int) "factorizations" 800 paper.stats.factorizations;
  Alcotest.(check int) "device evals" 800 paper.stats.device_evals

(* ---- `Fast differential accuracy on the paper circuits ---- *)

(* The accuracy contract holds where the engine is operated: reporting
   steps that resolve the circuit's time constants (the bench rows use
   dt = 50 ns; the sweeps µs-scale steps). At dt comparable to the
   fastest time constant the adaptive controller correctly trades
   accuracy for the remaining speed — covered separately below. *)
let test_fast_accuracy_paper_circuits () =
  List.iter
    (fun tc ->
      let e, _, _ = nrmse_fast_vs_paper tc ~dt:5e-7 ~t_stop:1e-3 in
      if not (e < nrmse_budget) then
        Alcotest.failf "%s: fast NRMSE %.3e exceeds budget %.0e"
          tc.Circuits.label e nrmse_budget)
    (Circuits.all_paper_cases ()
    @ [
        Circuits.rc_ladder 20;
        Circuits.rlc_series ();
        Circuits.rectifier ();
      ])

let test_fast_coarse_dt_degrades_gracefully () =
  (* Reporting steps comparable to the stage time constant: the
     controller gives up some agreement with the fixed-budget paper
     discretisation, but the error stays bounded and shrinks again
     with the step. *)
  let tc = Circuits.rc_ladder 20 in
  let e_coarse, _, _ = nrmse_fast_vs_paper tc ~dt:4e-6 ~t_stop:1e-3 in
  let e_fine, _, _ = nrmse_fast_vs_paper tc ~dt:5e-7 ~t_stop:1e-3 in
  Alcotest.(check bool)
    (Printf.sprintf "bounded at coarse dt (%.3e)" e_coarse)
    true (e_coarse < 0.05);
  Alcotest.(check bool)
    (Printf.sprintf "improves with resolution (%.3e < %.3e)" e_fine e_coarse)
    true (e_fine < e_coarse)

(* ---- `Fast does radically less factorisation work ---- *)

let test_fast_linear_workload () =
  let tc = Circuits.rc_ladder 20 in
  let _, paper, fast = nrmse_fast_vs_paper tc ~dt:2e-6 ~t_stop:1e-3 in
  (* A linear network with a fixed step: the LU is computed a handful
     of times (once per adaptive substep count in use), not once per
     Newton pass. *)
  Alcotest.(check bool)
    (Printf.sprintf "few factorizations (%d vs %d)" fast.Engine.stats.factorizations
       paper.Engine.stats.factorizations)
    true
    (fast.Engine.stats.factorizations * 100 < paper.Engine.stats.factorizations);
  Alcotest.(check bool) "fewer solves" true
    (fast.Engine.stats.solves < paper.Engine.stats.solves);
  (* Early-exit telemetry is always populated under `Fast, and by
     construction nothing is wasted. *)
  match fast.Engine.newton with
  | None -> Alcotest.fail "`Fast must populate newton telemetry"
  | Some nw ->
      Alcotest.(check int) "no wasted passes" 0 nw.Engine.wasted_iters;
      Alcotest.(check bool) "pivot range sane" true
        (nw.Engine.pivot_min > 0.0 && nw.Engine.pivot_max >= nw.Engine.pivot_min)

let test_fast_pwl_restamps () =
  (* The rectifier flips its diode region as the sine crosses 0: the
     factor cache must re-stamp on each region change — more than one
     factorisation, still far below the paper budget. *)
  let tc = Circuits.rectifier () in
  let _, paper, fast = nrmse_fast_vs_paper tc ~dt:2e-6 ~t_stop:2e-3 in
  Alcotest.(check bool) "re-stamps on region changes" true
    (fast.Engine.stats.factorizations > 1);
  Alcotest.(check bool) "still far below paper budget" true
    (fast.Engine.stats.factorizations * 20 < paper.Engine.stats.factorizations)

(* ---- Random circuits: QCheck differential harness ---- *)

let prop_fast_matches_paper_rc =
  QCheck.Test.make ~name:"fast matches paper on random RC ladders" ~count:10
    QCheck.(pair (int_range 1 6) (float_range 0.5 4.0))
    (fun (order, rscale) ->
      let tc = Circuits.rc_ladder ~r:(5e3 *. rscale) order in
      let e, _, _ =
        nrmse_fast_vs_paper ~substeps:4 tc ~dt:2.5e-7 ~t_stop:2.5e-4
      in
      e < nrmse_budget)

let prop_fast_matches_paper_rlc =
  QCheck.Test.make ~name:"fast matches paper on random RLC networks" ~count:8
    QCheck.(pair (float_range 0.5 3.0) (float_range 0.5 3.0))
    (fun (rs, ls) ->
      let tc = Circuits.rlc_series ~r:(100.0 *. rs) ~l:(10e-3 *. ls) () in
      let e, _, _ =
        nrmse_fast_vs_paper ~substeps:8 tc ~dt:1e-6 ~t_stop:2e-3
      in
      e < nrmse_budget)

let prop_fast_matches_paper_pwl =
  QCheck.Test.make ~name:"fast matches paper on random rectifiers" ~count:8
    QCheck.(pair (float_range 0.3 3.0) (float_range 0.5 2.0))
    (fun (rscale, gscale) ->
      let tc =
        Circuits.rectifier ~r:(1e3 *. rscale) ~g_on:(1e-2 *. gscale) ()
      in
      let e, _, _ =
        nrmse_fast_vs_paper ~substeps:8 tc ~dt:5e-6 ~t_stop:2e-3
      in
      e < nrmse_budget)

(* ---- Sparse vs dense linear algebra ---- *)

let dense_solution triplets ~n b =
  let m = Matrix.create n in
  List.iter (fun (i, j, v) -> Matrix.add_to m i j v) triplets;
  Matrix.lu_solve (Matrix.lu_factor m) b

let rel_close a b =
  Array.for_all2
    (fun u w -> abs_float (u -. w) <= 1e-12 *. (1.0 +. max (abs_float u) (abs_float w)))
    a b

let prop_sparse_matches_dense =
  QCheck.Test.make
    ~name:"sparse direct, and analyze+refactor, match the dense solver"
    ~count:50
    QCheck.(
      list_of_size (Gen.int_range 5 40)
        (triple (int_range 0 9) (int_range 0 9) (float_range (-2.0) 2.0)))
    (fun entries ->
      let n = 10 in
      let triplets = entries @ List.init n (fun i -> (i, i, 25.0)) in
      let b = Array.init n (fun i -> float_of_int (i - 4)) in
      let xd = dense_solution triplets ~n b in
      let xs = Sparse.lu_solve (Sparse.lu_factor ~n triplets) b in
      let sym = Sparse.analyze ~n triplets in
      let xr = Sparse.lu_solve (Sparse.refactor sym triplets) b in
      (* Numeric refactor on the same pattern with different values:
         scale each entry, keeping diagonal dominance. *)
      let triplets' =
        List.mapi
          (fun k (i, j, v) ->
            (i, j, v *. (1.0 +. (0.04 *. float_of_int (k mod 7)))))
          triplets
      in
      let xd' = dense_solution triplets' ~n b in
      let xr' = Sparse.lu_solve (Sparse.refactor sym triplets') b in
      rel_close xd xs && rel_close xd xr && rel_close xd' xr')

let test_stale_pivot_fallback () =
  (* analyze picks its pivot order from the values it is given; feed
     the same pattern values that zero the chosen pivot. The matrix is
     still nonsingular — only the reused pivot order is stale — so
     refactor must refuse with [Singular], and a fresh analysis of the
     new values must succeed. *)
  let good = [ (0, 0, 4.0); (0, 1, 1.0); (1, 0, 1.0); (1, 1, 4.0) ] in
  let stale = [ (0, 0, 0.0); (0, 1, 1.0); (1, 0, 1.0); (1, 1, 0.0) ] in
  let sym = Sparse.analyze ~n:2 good in
  let b = [| 3.0; 4.0 |] in
  let x = Sparse.lu_solve (Sparse.refactor sym good) b in
  checkf 1e-12 "good x0" (8.0 /. 15.0) x.(0);
  checkf 1e-12 "good x1" (13.0 /. 15.0) x.(1);
  Alcotest.check_raises "stale pivot detected" (Sparse.Singular 0) (fun () ->
      ignore (Sparse.refactor sym stale));
  (* The engine's escape hatch: re-analyze with fresh pivoting. *)
  let x' = Sparse.lu_solve (Sparse.refactor (Sparse.analyze ~n:2 stale) stale) b in
  checkf 1e-12 "recovered x0" 4.0 x'.(0);
  checkf 1e-12 "recovered x1" 3.0 x'.(1)

(* ---- `Sparse back-end coverage in DC and the ELN stepper ---- *)

let test_dc_sparse_solver () =
  let check_circuit label c nodes =
    let dense = Dc.operating_point c in
    let sparse = Dc.operating_point ~solver:`Sparse c in
    List.iter
      (fun n ->
        checkf 1e-9
          (Printf.sprintf "%s: V(%s)" label n)
          (Dc.voltage dense n) (Dc.voltage sparse n))
      nodes
  in
  let div = Circuit.create () in
  Circuit.add_vsource div ~name:"vs" ~pos:"a" ~neg:"gnd" (Component.Dc 9.0);
  Circuit.add_resistor div ~name:"r1" ~pos:"a" ~neg:"mid" 1.0e3;
  Circuit.add_resistor div ~name:"r2" ~pos:"mid" ~neg:"gnd" 2.0e3;
  check_circuit "divider" div [ "a"; "mid" ];
  checkf 1e-9 "divider value" 6.0
    (Dc.voltage (Dc.operating_point ~solver:`Sparse div) "mid");
  (* Piecewise-linear region iteration through the sparse back-end. *)
  let rect = (Circuits.rectifier ()).Circuits.circuit in
  check_circuit "rectifier op" rect [ "in"; "out" ]

let test_eln_stepper_sparse () =
  let tc = Circuits.rc_ladder 8 in
  let inputs = List.map fst tc.Circuits.stimuli in
  let stim = List.map snd tc.Circuits.stimuli in
  let mk solver =
    Engine.Eln_stepper.create ~solver tc.Circuits.circuit ~inputs
      ~output:tc.Circuits.output ~dt:1e-5
  in
  let dense = mk `Dense and sparse = mk `Sparse in
  for k = 1 to 200 do
    let t = float_of_int k *. 1e-5 in
    let iv = Array.of_list (List.map (fun s -> s t) stim) in
    let vd = Engine.Eln_stepper.step dense ~input_values:iv in
    let vs = Engine.Eln_stepper.step sparse ~input_values:iv in
    if not (abs_float (vd -. vs) <= 1e-12 *. (1.0 +. abs_float vd)) then
      Alcotest.failf "eln step %d: dense %h vs sparse %h" k vd vs
  done

(* ---- Singular and near-singular parity across fidelities ---- *)

let singular_of fidelity circuit ~output =
  try
    ignore
      (Engine.spice_like ~fidelity circuit ~inputs:[] ~output ~dt:1e-5
         ~t_stop:1e-4);
    None
  with Matrix.Singular k -> Some k

let test_singular_parity () =
  (* Numerically singular (the structural cases — source loops and
     cutsets — are caught earlier, at [System.build] time): a VCCS
     whose transconductance exactly cancels the only conductance, so
     the assembled matrix is 0. *)
  let c = Circuit.create () in
  Circuit.add_resistor c ~name:"r" ~pos:"a" ~neg:"gnd" 1.0e3;
  Circuit.add c
    (Component.make ~name:"g1" ~pos:"a" ~neg:"gnd"
       (Component.Vccs { gm = -1e-3; ctrl_pos = "a"; ctrl_neg = "gnd" }));
  let out = Expr.potential "a" "gnd" in
  let p = singular_of `Paper c ~output:out in
  let f = singular_of `Fast c ~output:out in
  Alcotest.(check bool) "paper raises" true (p <> None);
  Alcotest.(check (option int)) "same Singular k" p f;
  (* Near-singular: a conductance below the 1e-300 pivot floor. *)
  let w = Circuit.create () in
  Circuit.add_resistor w ~name:"r" ~pos:"a" ~neg:"gnd" 1e305;
  let out = Expr.potential "a" "gnd" in
  let p = singular_of `Paper w ~output:out in
  let f = singular_of `Fast w ~output:out in
  Alcotest.(check bool) "paper rejects tiny pivot" true (p <> None);
  Alcotest.(check (option int)) "same near-singular k" p f

(* ---- Telemetry: journal population and journal-off identity ---- *)

let test_fast_journal_telemetry () =
  Journal.reset ();
  Journal.disable ();
  let tc = Circuits.rc_ladder 20 in
  let run () =
    Engine.run_testcase_spice ~fidelity:`Fast tc ~dt:2e-6 ~t_stop:1e-3
  in
  let off = run () in
  Journal.reset ();
  Journal.enable ();
  let on = run () in
  Journal.disable ();
  (* The journal is pure observation: not one sample may move. *)
  check_traces "journal on/off" off.trace on.trace;
  Alcotest.(check int) "same factorizations" off.stats.factorizations
    on.stats.factorizations;
  let events = List.filter (fun e -> e.Journal.cat = "mna") (Journal.events ()) in
  let runs = List.filter (fun e -> e.Journal.name = "newton.run") events in
  (match runs with
  | [ e ] ->
      let field k = List.assoc_opt k e.Journal.payload in
      Alcotest.(check bool) "wasted_iters = 0" true
        (field "wasted_iters" = Some (Journal.I 0));
      (match field "dt_stress" with
      | Some (Journal.F s) ->
          Alcotest.(check bool) "dt_stress finite" true (Float.is_finite s)
      | _ -> Alcotest.fail "newton.run missing dt_stress");
      (match field "total_iters" with
      | Some (Journal.I t) ->
          Alcotest.(check bool) "total_iters positive" true (t > 0)
      | _ -> Alcotest.fail "newton.run missing total_iters")
  | l -> Alcotest.failf "expected one newton.run event, got %d" (List.length l));
  let steps = List.filter (fun e -> e.Journal.name = "newton.step") events in
  Alcotest.(check int) "one newton.step per reporting step" on.stats.steps
    (List.length steps);
  List.iter
    (fun e ->
      match List.assoc_opt "nsub" e.Journal.payload with
      | Some (Journal.I ns) ->
          if ns < 1 || ns > 8 then
            Alcotest.failf "newton.step nsub %d out of range" ns
      | _ -> Alcotest.fail "newton.step missing nsub")
    steps

(* ---- Golden traces for the fast path ---- *)

(* Regenerate after an intentional controller change:

     AMSVP_GOLDEN_REGEN=1 dune exec test/test_mna_fast.exe -- test golden
     cp _build/default/test/fixtures/fast_*.golden test/fixtures/
*)
let golden_cases =
  [
    ("fast_rc20", Circuits.rc_ladder 20, 1e-5, 1e-3);
    ("fast_rect", Circuits.rectifier (), 1e-5, 2e-3);
  ]

let fixture_dir =
  Filename.concat (Filename.dirname Sys.executable_name) "fixtures"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let trace_text t =
  let b = Buffer.create 4096 in
  for i = 0 to Trace.length t - 1 do
    Buffer.add_string b
      (Printf.sprintf "%.9e %h\n" (Trace.time t i) (Trace.value t i))
  done;
  Buffer.contents b

let test_golden_fast_traces () =
  let regen = Sys.getenv_opt "AMSVP_GOLDEN_REGEN" = Some "1" in
  List.iter
    (fun (base, tc, dt, t_stop) ->
      let golden = Filename.concat fixture_dir (base ^ ".golden") in
      let r = Engine.run_testcase_spice ~fidelity:`Fast tc ~dt ~t_stop in
      let text = trace_text r.trace in
      if regen then begin
        (try Sys.remove golden with Sys_error _ -> ());
        let oc = open_out_bin golden in
        output_string oc text;
        close_out oc
      end
      else if not (Sys.file_exists golden) then
        Alcotest.failf "%s missing — run with AMSVP_GOLDEN_REGEN=1" golden
      else
        let expected = read_file golden in
        if not (String.equal expected text) then
          Alcotest.failf "%s drifted from its golden baseline" base)
    golden_cases

(* ---- Stepper parity: the VP embedding of the fast engine ---- *)

let test_stepper_fast_matches_engine () =
  (* With a constant stimulus the stepper's hold-within-step input
     contract coincides with the engine's substep sampling, so the
     two adaptive controllers must walk the same path. *)
  let tc = Circuits.rc_ladder 4 in
  let dt = 1e-5 in
  let names = List.map fst tc.Circuits.stimuli in
  let inputs = List.map (fun n -> (n, Stimulus.constant 1.0)) names in
  let engine =
    Engine.spice_like ~fidelity:`Fast tc.Circuits.circuit ~inputs
      ~output:tc.Circuits.output ~dt ~t_stop:1e-3
  in
  let st =
    Engine.Spice_stepper.create ~fidelity:`Fast tc.Circuits.circuit
      ~inputs:names ~output:tc.Circuits.output ~dt
  in
  let iv = Array.make (List.length names) 1.0 in
  for k = 1 to Trace.length engine.trace - 1 do
    let v = Engine.Spice_stepper.step st ~input_values:iv in
    let ve = Trace.value engine.trace k in
    if not (abs_float (v -. ve) <= 1e-9 *. (1.0 +. abs_float ve)) then
      Alcotest.failf "stepper step %d: %h vs engine %h" k v ve
  done

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "amsvp-mna-fast"
    [
      ( "fidelity",
        [
          Alcotest.test_case "paper bit-identity" `Quick test_paper_bit_identity;
          Alcotest.test_case "fast accuracy on paper circuits" `Quick
            test_fast_accuracy_paper_circuits;
          Alcotest.test_case "coarse dt degrades gracefully" `Quick
            test_fast_coarse_dt_degrades_gracefully;
          Alcotest.test_case "fast linear workload" `Quick
            test_fast_linear_workload;
          Alcotest.test_case "fast pwl re-stamps" `Quick test_fast_pwl_restamps;
          Alcotest.test_case "stepper fast matches engine" `Quick
            test_stepper_fast_matches_engine;
        ] );
      ( "random",
        qt
          [
            prop_fast_matches_paper_rc;
            prop_fast_matches_paper_rlc;
            prop_fast_matches_paper_pwl;
            prop_sparse_matches_dense;
          ] );
      ( "sparse",
        [
          Alcotest.test_case "stale pivot fallback" `Quick
            test_stale_pivot_fallback;
          Alcotest.test_case "dc sparse solver" `Quick test_dc_sparse_solver;
          Alcotest.test_case "eln stepper sparse" `Quick test_eln_stepper_sparse;
          Alcotest.test_case "singular parity" `Quick test_singular_parity;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "fast journal telemetry" `Quick
            test_fast_journal_telemetry;
        ] );
      ( "golden",
        [
          Alcotest.test_case "fast golden traces" `Quick test_golden_fast_traces;
        ] );
    ]
