(* Tests for the sweep service: protocol codec round-trips and
   malformed-frame rejection, checkpoint recovery and resume
   determinism, the forked worker pool's crash re-dispatch and timeout
   kill paths, and a fork-the-daemon end-to-end session. *)

module Spec = Amsvp_sweep.Spec
module Sampler = Amsvp_sweep.Sampler
module Runner = Amsvp_sweep.Runner
module Report = Amsvp_sweep.Report
module Checkpoint = Amsvp_sweep.Checkpoint
module Protocol = Amsvp_serve.Protocol
module Procpool = Amsvp_serve.Procpool
module Daemon = Amsvp_serve.Daemon
module Client = Amsvp_serve.Client
module Health = Amsvp_probe.Health
module Diag = Amsvp_diag.Diag
module Json = Amsvp_util.Json
module Journal = Amsvp_obs.Journal
module Obs = Amsvp_obs.Obs

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

(* ---- generators ---- *)

let hostile_floats =
  [| nan; infinity; neg_infinity; 0.0; -0.0; 1e-300; -1.5e300; 0.1 |]

let gen_float =
  QCheck.Gen.(
    frequency
      [
        (3, float);
        (2, map (fun i -> hostile_floats.(i mod Array.length hostile_floats))
             nat);
      ])

let hostile_strings =
  [ ""; "plain"; "\"quoted\""; "back\\slash"; "new\nline"; "tab\there";
    "\x01control"; "V(out,gnd)"; "caf\xc3\xa9" ]

let gen_string =
  QCheck.Gen.(
    frequency
      [
        (3, oneofl hostile_strings);
        (1, string_size ~gen:printable (int_bound 20));
      ])

let gen_issue =
  QCheck.Gen.(
    let kind =
      oneofl
        [ Health.Nan_or_inf; Health.Amplitude; Health.Stuck;
          Health.Nrmse_budget; Health.Timeout; Health.Crashed ]
    in
    map3 (fun kind time value -> { Health.kind; time; value }) kind gen_float
      gen_float)

let gen_result =
  let open QCheck.Gen in
  int_bound 5000 >>= fun index ->
  gen_string >>= fun label ->
  list_size (int_bound 4)
    (pair (oneofl [ "r1.r"; "d1.g_on"; "weird\"key" ]) gen_float)
  >>= fun overrides ->
  gen_float >>= fun out_final ->
  gen_float >>= fun out_rms ->
  opt gen_float >>= fun nrmse ->
  gen_string >>= fun signal ->
  bool >>= fun healthy ->
  list_size (int_bound 3) gen_issue >>= fun issues ->
  bool >>= fun cached ->
  gen_float >|= fun wall_s ->
  {
    Runner.point = { Sampler.index; label; overrides };
    out_final;
    out_rms;
    nrmse;
    health = { Health.v_signal = signal; v_healthy = healthy; v_issues = issues };
    cached;
    wall_s;
  }

(* Encoded-form equality sidesteps NaN <> NaN: the codec is canonical,
   so equal encodings mean equal values. *)
let reencodes_to_same to_json of_json r =
  let line = to_json r in
  match of_json line with
  | Error m -> QCheck.Test.fail_reportf "decode failed on %s: %s" line m
  | Ok r' ->
      let line' = to_json r' in
      if line <> line' then
        QCheck.Test.fail_reportf "not canonical:\n  %s\n  %s" line line'
      else true

(* ---- protocol ---- *)

let prop_result_roundtrip =
  QCheck.Test.make ~name:"point-result codec round-trips" ~count:300
    (QCheck.make gen_result)
    (reencodes_to_same Checkpoint.result_to_json Checkpoint.result_of_line)

let prop_point_frame_roundtrip =
  QCheck.Test.make ~name:"point frames round-trip" ~count:200
    (QCheck.make QCheck.Gen.(pair (int_bound 99) gen_result))
    (fun (id, result) ->
      reencodes_to_same
        (fun (id, result) ->
          Protocol.encode_response (Protocol.Point { id; result }))
        (fun line ->
          match Protocol.decode_response line with
          | Ok (Protocol.Point { id; result }) -> Ok (id, result)
          | Ok _ -> Error "wrong constructor"
          | Error _ as e -> e)
        (id, result))

let prop_submit_roundtrip =
  QCheck.Test.make ~name:"submit frames round-trip" ~count:200
    (QCheck.make QCheck.Gen.(pair gen_string (opt (int_bound 64))))
    (fun (spec_text, jobs) ->
      let req = Protocol.Submit { spec_text; jobs } in
      match Protocol.decode_request (Protocol.encode_request req) with
      | Ok (Protocol.Submit { spec_text = st; jobs = j }) ->
          st = spec_text && j = jobs
      | _ -> false)

let test_simple_frames_roundtrip () =
  let reqs = [ Protocol.Ping; Protocol.Stats; Protocol.Shutdown ] in
  List.iter
    (fun r ->
      match Protocol.decode_request (Protocol.encode_request r) with
      | Ok r' -> Alcotest.(check bool) "request" true (r = r')
      | Error m -> Alcotest.failf "decode: %s" m)
    reqs;
  let resps =
    [
      Protocol.Accepted
        { id = 3; sweep = "mc"; circuit = "RECT"; points = 66; resumed = 2 };
      Protocol.Done
        {
          id = 3;
          points = 66;
          unhealthy = 1;
          cache_hits = 60;
          cache_misses = 6;
          total_s = 1.25;
          complete = false;
        };
      Protocol.Failed { message = "bad spec: line 2" };
      Protocol.Rejected
        {
          message = "value-range screen rejected the sweep: 1 error(s)";
          findings =
            [
              {
                Diag.code = "AMS060";
                severity = Diag.Error;
                message = "division by a provably-zero quantity";
                span = Some (Diag.span ~file:"m.vams" 4 12);
                subject = Some "V(out,gnd)";
              };
              {
                Diag.code = "AMS063";
                severity = Diag.Warning;
                message = "bound exceeds the amplitude budget";
                span = None;
                subject = None;
              };
            ];
        };
      Protocol.Rejected { message = "gate refused"; findings = [] };
      Protocol.Pong;
      Protocol.Stats_reply
        {
          st_requests = 9;
          st_points = 120;
          st_ctx_hits = 7;
          st_ctx_misses = 2;
          st_uptime_s = 3.5;
          st_in_flight = 4;
          st_workers = 2;
          st_spawned = 11;
          st_crashed = 1;
          st_timeouts = 2;
          st_redispatched = 3;
          st_telemetry_torn = 0;
          st_journal_dropped = 17;
          st_heap_words = 1_000_003;
        };
      Protocol.Bye;
    ]
  in
  List.iter
    (fun r ->
      match Protocol.decode_response (Protocol.encode_response r) with
      | Ok r' -> Alcotest.(check bool) "response" true (r = r')
      | Error m -> Alcotest.failf "decode: %s" m)
    resps

let test_malformed_frames_rejected () =
  let assert_err what = function
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s should have been rejected" what
  in
  let bad =
    [
      ("empty", "");
      ("not json", "hello");
      ("wrong version", "{\"v\":2,\"req\":\"ping\"}");
      ("no version", "{\"req\":\"ping\"}");
      ("unknown req", "{\"v\":1,\"req\":\"explode\"}");
      ("submit without spec", "{\"v\":1,\"req\":\"submit\"}");
      ("array frame", "[1,2,3]");
    ]
  in
  List.iter (fun (what, line) -> assert_err what (Protocol.decode_request line)) bad;
  (* Truncations of a valid frame must all be rejected, never raise. *)
  let whole =
    Protocol.encode_response
      (Protocol.Accepted
         { id = 1; sweep = "s\"weird"; circuit = "RECT"; points = 5;
           resumed = 0 })
  in
  for n = 0 to String.length whole - 1 do
    assert_err
      (Printf.sprintf "truncated at %d" n)
      (Protocol.decode_response (String.sub whole 0 n))
  done;
  assert_err "unknown event" (Protocol.decode_response "{\"v\":1,\"ev\":\"nope\"}")

(* ---- telemetry frames ---- *)

(* Journal payloads / span args / counter labels are keyed lists; JSON
   objects with duplicate keys are not guaranteed to survive a parse
   intact, and real emitters never produce them, so generators dedupe. *)
let dedupe_keys kvs =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun (k, _) ->
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    kvs

let gen_value =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun f -> Journal.F f) gen_float);
        (2, map (fun i -> Journal.I (i - 500)) (int_bound 1000));
        (3, map (fun s -> Journal.S s) gen_string);
        (1, map (fun b -> Journal.B b) bool);
      ])

let gen_event =
  let open QCheck.Gen in
  nat >>= fun seq ->
  gen_string >>= fun origin ->
  int_bound 8 >>= fun dom ->
  gen_string >>= fun cat ->
  gen_string >>= fun name ->
  oneofl [ Journal.Debug; Journal.Info; Journal.Warn; Journal.Error ]
  >>= fun severity ->
  int_range (-1) 99 >>= fun step ->
  gen_float >>= fun time ->
  nat >>= fun wall_ns ->
  list_size (int_bound 4) (pair gen_string gen_value) >|= fun payload ->
  {
    Journal.seq;
    origin;
    dom;
    cat;
    name;
    severity;
    step;
    time;
    wall_ns;
    payload = dedupe_keys payload;
  }

let gen_span =
  let open QCheck.Gen in
  gen_string >>= fun name ->
  gen_string >>= fun cat ->
  nat >>= fun start_ns ->
  nat >>= fun dur_ns ->
  int_bound 4 >>= fun depth ->
  int_bound 8 >>= fun dom ->
  gen_string >>= fun proc ->
  list_size (int_bound 3) (pair gen_string gen_string) >|= fun args ->
  { Obs.name; cat; start_ns; dur_ns; depth; dom; proc;
    args = dedupe_keys args }

let gen_counter_row =
  QCheck.Gen.(
    map3
      (fun name labels delta -> (name, dedupe_keys labels, delta + 1))
      gen_string
      (list_size (int_bound 2) (pair gen_string gen_string))
      (int_bound 10_000))

let gen_telemetry =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun evs -> Protocol.Tel_journal evs)
             (list_size (int_bound 5) gen_event));
        ( 2,
          map2
            (fun origin spans -> Protocol.Tel_spans { origin; spans })
            gen_string
            (list_size (int_bound 5) gen_span) );
        ( 2,
          map2
            (fun origin counters -> Protocol.Tel_counters { origin; counters })
            gen_string
            (list_size (int_bound 4) gen_counter_row) );
      ])

let prop_telemetry_roundtrip =
  QCheck.Test.make ~name:"telemetry frames round-trip" ~count:300
    (QCheck.make gen_telemetry)
    (reencodes_to_same Protocol.encode_telemetry (fun line ->
         match Protocol.decode_telemetry line with
         | `Telemetry t -> Ok t
         | `Torn m -> Error ("torn: " ^ m)
         | `Not_telemetry -> Error "not telemetry"))

let test_telemetry_truncation () =
  let ev =
    {
      Journal.seq = 3;
      origin = "w1:4242";
      dom = 0;
      cat = "serve";
      name = "task.begin";
      severity = Journal.Info;
      step = -1;
      time = nan;
      wall_ns = 123_456;
      payload = [ ("id", Journal.I 7); ("label", Journal.S "p0001") ];
    }
  in
  let whole = Protocol.encode_telemetry (Protocol.Tel_journal [ ev ]) in
  (match Protocol.decode_telemetry whole with
  | `Telemetry _ -> ()
  | `Torn m -> Alcotest.failf "whole frame torn: %s" m
  | `Not_telemetry -> Alcotest.fail "whole frame not recognised");
  (* Every proper truncation must classify as torn (never raise, never
     parse) — except the empty line, which is simply not telemetry. *)
  for n = 0 to String.length whole - 1 do
    match Protocol.decode_telemetry (String.sub whole 0 n) with
    | `Torn _ when n > 0 -> ()
    | `Not_telemetry when n = 0 -> ()
    | `Telemetry _ -> Alcotest.failf "truncation at %d parsed" n
    | `Torn _ -> Alcotest.failf "empty line reported torn"
    | `Not_telemetry -> Alcotest.failf "truncation at %d not flagged" n
  done;
  (* Result and task lines must fall through untouched. *)
  List.iter
    (fun line ->
      match Protocol.decode_telemetry line with
      | `Not_telemetry -> ()
      | _ -> Alcotest.failf "misclassified line: %s" line)
    [
      "{\"index\":0,\"label\":\"p0000\"}";
      "hello";
      "{\"v\":1,\"req\":\"ping\"}";
    ]

let test_ingest_telemetry_line () =
  Journal.enable ();
  Journal.reset ();
  Fun.protect
    ~finally:(fun () ->
      Journal.reset ();
      Journal.disable ())
    (fun () ->
      let tally = Procpool.make_tally () in
      let ev =
        {
          Journal.seq = 9;
          origin = "w0:777";
          dom = 2;
          cat = "mna";
          name = "newton.run";
          severity = Journal.Info;
          step = 4;
          time = 1e-5;
          wall_ns = 42;
          payload = [ ("total_iters", Journal.I 12) ];
        }
      in
      let line = Protocol.encode_telemetry (Protocol.Tel_journal [ ev ]) in
      Alcotest.(check bool) "valid frame absorbed" true
        (Procpool.ingest_telemetry_line ~tally line);
      let got =
        List.filter
          (fun e -> e.Journal.origin = "w0:777")
          (Journal.events ())
      in
      Alcotest.(check int) "foreign event ingested" 1 (List.length got);
      Alcotest.(check int) "seq preserved" 9 (List.hd got).Journal.seq;
      (* A torn frame is absorbed (true) but only counted, never fatal. *)
      Alcotest.(check bool) "torn frame absorbed" true
        (Procpool.ingest_telemetry_line ~tally
           (Protocol.telemetry_prefix ^ "journal\",\"events\":[{boom"));
      Alcotest.(check int) "torn counted" 1 tally.Procpool.t_torn;
      (* A result line is not telemetry. *)
      Alcotest.(check bool) "result line falls through" false
        (Procpool.ingest_telemetry_line ~tally "{\"index\":0}"))

(* ---- checkpoint files ---- *)

let small_spec =
  {
    Spec.default with
    name = "srv";
    circuit = Some "RECT";
    t_stop = Some 2e-4;
    dt = Some 1e-6;
    samples = 4;
    seed = 11;
    axes =
      [ { Spec.param = "d1.g_on"; range = Spec.Uniform { lo = 5e-3; hi = 2e-2 } } ];
    corners =
      [ { Spec.corner_name = "worst"; binds = [ ("r1.r", 2.2e3) ] } ];
  }

let resolve_exn spec =
  match Runner.resolve spec with
  | Ok tc -> tc
  | Error m -> Alcotest.failf "resolve: %s" m

let test_checkpoint_roundtrip () =
  let path = tmp "amsvp_ckpt_rt.jsonl" in
  let tc = resolve_exn small_spec in
  let summary = Runner.run small_spec tc in
  let w =
    Checkpoint.create ~path small_spec ~circuit:"RECT"
      ~points:(Array.length summary.Runner.points)
  in
  Array.iter (Checkpoint.append w) summary.Runner.points;
  Checkpoint.close w;
  (match Checkpoint.load ~path small_spec ~circuit:"RECT" with
  | Error m -> Alcotest.failf "load: %s" m
  | Ok rs ->
      Alcotest.(check int) "count" (Array.length summary.Runner.points)
        (List.length rs);
      List.iteri
        (fun i (r : Runner.point_result) ->
          let orig = summary.Runner.points.(i) in
          Alcotest.(check string)
            "identical line"
            (Checkpoint.result_to_json orig)
            (Checkpoint.result_to_json r))
        rs);
  Sys.remove path

let test_checkpoint_mismatch_and_torn_tail () =
  let path = tmp "amsvp_ckpt_mm.jsonl" in
  let tc = resolve_exn small_spec in
  let ctx = Runner.prepare small_spec tc in
  let p0 = Runner.run_point ctx (Runner.ctx_points ctx).(0) in
  let w = Checkpoint.create ~path small_spec ~circuit:"RECT" ~points:5 in
  Checkpoint.append w p0;
  Checkpoint.append w p0;
  Checkpoint.close w;
  (* Foreign spec: same file, different seed -> digest mismatch. *)
  let other = { small_spec with Spec.seed = 99 } in
  (match Checkpoint.load ~path other ~circuit:"RECT" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mismatched header should be rejected");
  (* Torn tail: a kill mid-write leaves a partial line; recovery keeps
     the intact prefix. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"index\":4,\"label\":\"p00";
  close_out oc;
  (match Checkpoint.load ~path small_spec ~circuit:"RECT" with
  | Error m -> Alcotest.failf "torn load: %s" m
  | Ok rs -> Alcotest.(check int) "torn tail dropped" 2 (List.length rs));
  Sys.remove path

let test_resume_determinism () =
  let path = tmp "amsvp_ckpt_resume.jsonl" in
  if Sys.file_exists path then Sys.remove path;
  let tc = resolve_exn small_spec in
  (* Uninterrupted reference run. *)
  let full = Runner.run small_spec tc in
  let report_a = Report.json ~timings:false full in
  let total = Array.length full.Runner.points in
  (* Interrupted run: checkpoint every point, die after the second. *)
  let w = Checkpoint.create ~path small_spec ~circuit:"RECT" ~points:total in
  let seen = ref 0 in
  (try
     ignore
       (Runner.run
          ~on_point:(fun r ->
            Checkpoint.append w r;
            incr seen;
            if !seen = 2 then failwith "simulated kill")
          small_spec tc)
   with Failure _ -> ());
  Checkpoint.close w;
  (* Resume: recover, execute only the remainder, merge. *)
  let completed =
    match Checkpoint.load ~path small_spec ~circuit:"RECT" with
    | Ok rs -> rs
    | Error m -> Alcotest.failf "load: %s" m
  in
  Alcotest.(check int) "recovered" 2 (List.length completed);
  let executed = ref 0 in
  let resumed =
    Runner.run ~on_point:(fun _ -> incr executed) ~completed small_spec tc
  in
  Alcotest.(check int) "only the remainder ran" (total - 2) !executed;
  let report_b = Report.json ~timings:false resumed in
  Alcotest.(check string) "byte-identical reports" report_a report_b;
  Sys.remove path

(* ---- forked worker pool ---- *)

(* A synthetic work function: no simulation, so pool mechanics are the
   only thing under test. [wall_s] smuggles the retry count out. *)
let mk ?(retry = 0) (p : Sampler.point) =
  {
    Runner.point = p;
    out_final = float_of_int p.Sampler.index;
    out_rms = 0.0;
    nrmse = None;
    health = { Health.v_signal = "t"; v_healthy = true; v_issues = [] };
    cached = true;
    wall_s = float_of_int retry;
  }

let pool_points n =
  Array.init n (fun i ->
      { Sampler.index = i; label = Printf.sprintf "p%04d" i; overrides = [] })

let test_pool_exactly_once () =
  let points = pool_points 9 in
  let results =
    Procpool.run ~workers:3 (fun ~retry p -> mk ~retry p) points
  in
  Alcotest.(check int) "all slots" 9 (Array.length results);
  Array.iteri
    (fun i r ->
      match r with
      | None -> Alcotest.failf "slot %d missing" i
      | Some (r : Runner.point_result) ->
          Alcotest.(check int) "slot order" i r.Runner.point.Sampler.index;
          Alcotest.(check (float 0.0)) "value" (float_of_int i)
            r.Runner.out_final)
    results

let test_pool_crash_redispatch () =
  let points = pool_points 6 in
  let tally = Procpool.make_tally () in
  let results =
    Procpool.run ~workers:2 ~retries:1 ~tally
      (fun ~retry p ->
        if p.Sampler.index = 2 && retry = 0 then Unix._exit 9 else mk ~retry p)
      points
  in
  Alcotest.(check int) "one re-dispatch" 1 tally.Procpool.t_redispatched;
  Alcotest.(check int) "replacement spawned" 3 tally.Procpool.t_spawned;
  Alcotest.(check int) "no exhausted point" 0 tally.Procpool.t_crashed;
  Array.iteri
    (fun i r ->
      match r with
      | None -> Alcotest.failf "slot %d missing" i
      | Some (r : Runner.point_result) ->
          Alcotest.(check bool) "healthy" true
            r.Runner.health.Health.v_healthy;
          if i = 2 then
            Alcotest.(check (float 0.0)) "ran on retry 1" 1.0 r.Runner.wall_s)
    results

let test_pool_crash_exhausted () =
  let points = pool_points 4 in
  let tally = Procpool.make_tally () in
  let results =
    Procpool.run ~workers:2 ~retries:1 ~signal:"V(out,gnd)" ~tally
      (fun ~retry p ->
        ignore retry;
        if p.Sampler.index = 1 then Unix._exit 9 else mk p)
      points
  in
  Alcotest.(check int) "retries exhausted once" 1 tally.Procpool.t_crashed;
  Alcotest.(check int) "one re-dispatch before giving up" 1
    tally.Procpool.t_redispatched;
  match results.(1) with
  | None -> Alcotest.fail "crashed slot missing"
  | Some r -> (
      Alcotest.(check bool) "unhealthy" false r.Runner.health.Health.v_healthy;
      Alcotest.(check string) "signal" "V(out,gnd)"
        r.Runner.health.Health.v_signal;
      match r.Runner.health.Health.v_issues with
      | [ { Health.kind = Health.Crashed; _ } ] -> ()
      | _ -> Alcotest.fail "expected a crashed verdict")

let test_pool_timeout_kill () =
  let points = pool_points 3 in
  let tally = Procpool.make_tally () in
  let results =
    Procpool.run ~workers:2 ~timeout_s:0.05 ~tally
      (fun ~retry p ->
        ignore retry;
        if p.Sampler.index = 0 then Unix.sleepf 30.0;
        mk p)
      points
  in
  Alcotest.(check int) "kill counted" 1 tally.Procpool.t_timeouts;
  (match results.(0) with
  | Some r -> (
      Alcotest.(check bool) "unhealthy" false r.Runner.health.Health.v_healthy;
      match r.Runner.health.Health.v_issues with
      | [ { Health.kind = Health.Timeout; _ } ] -> ()
      | _ -> Alcotest.fail "expected a timeout verdict")
  | None -> Alcotest.fail "timed-out slot missing");
  (match results.(1) with
  | Some r -> Alcotest.(check bool) "others fine" true r.Runner.health.Health.v_healthy
  | None -> Alcotest.fail "slot 1 missing")

(* With the journal on, each child tags itself "w<slot>:<pid>" and
   ships its events back over the result pipe — so after [run] the
   parent's merged journal must contain events from every worker
   process that handled a task. *)
let test_pool_telemetry_ship () =
  Journal.enable ();
  Journal.reset ();
  Fun.protect
    ~finally:(fun () ->
      Journal.reset ();
      Journal.disable ())
    (fun () ->
      let tally = Procpool.make_tally () in
      let points = pool_points 8 in
      let results =
        Procpool.run ~workers:2 ~request_id:7 ~tally
          (fun ~retry p ->
            ignore retry;
            Unix.sleepf 0.01;
            mk p)
          points
      in
      Array.iteri
        (fun i r -> if r = None then Alcotest.failf "slot %d missing" i)
        results;
      let events = Journal.events () in
      let origins =
        List.filter_map
          (fun e ->
            let o = e.Journal.origin in
            if String.length o > 0 && o.[0] = 'w' then Some o else None)
          events
        |> List.sort_uniq Stdlib.compare
      in
      Alcotest.(check bool)
        (Printf.sprintf "two worker origins (got %d)" (List.length origins))
        true
        (List.length origins >= 2);
      let begins =
        List.filter (fun e -> e.Journal.name = "task.begin") events
      in
      Alcotest.(check int) "every task journaled its begin" 8
        (List.length begins);
      List.iter
        (fun e ->
          match List.assoc_opt "id" e.Journal.payload with
          | Some (Journal.I 7) -> ()
          | _ -> Alcotest.fail "task.begin missing the request id")
        begins;
      Alcotest.(check int) "no torn frames" 0 tally.Procpool.t_torn;
      Alcotest.(check int) "spawned" 2 tally.Procpool.t_spawned)

let test_pool_drain () =
  let points = pool_points 8 in
  let served = ref 0 in
  let results =
    Procpool.run ~workers:1
      ~on_result:(fun _ -> incr served)
      ~should_stop:(fun () -> !served >= 2)
      (fun ~retry p ->
        ignore retry;
        mk p)
      points
  in
  let some = Array.to_list results |> List.filter_map Fun.id in
  Alcotest.(check bool) "stopped early" true (List.length some < 8);
  Alcotest.(check bool) "served at least 2" true (List.length some >= 2)

(* ---- end-to-end daemon session ---- *)

let wait_for_socket path =
  let rec go n =
    if n = 0 then Alcotest.fail "daemon socket never appeared"
    else if Sys.file_exists path then ()
    else begin
      Unix.sleepf 0.05;
      go (n - 1)
    end
  in
  go 100

let test_daemon_session () =
  let sock = tmp (Printf.sprintf "amsvp_serve_%d.sock" (Unix.getpid ())) in
  let metrics = tmp (Printf.sprintf "amsvp_serve_%d.prom" (Unix.getpid ())) in
  let trace = tmp (Printf.sprintf "amsvp_serve_%d.trace" (Unix.getpid ())) in
  List.iter (fun p -> if Sys.file_exists p then Sys.remove p)
    [ sock; metrics; trace ];
  match Unix.fork () with
  | 0 ->
      (* Daemon process; _exit so the test runner's state is not
         flushed twice. *)
      (try
         Obs.enable ();
         Journal.enable ();
         Daemon.serve
           {
             (Daemon.default_config ~socket_path:sock) with
             workers = 2;
             metrics_out = Some metrics;
             trace_out = Some trace;
           }
       with _ -> Unix._exit 1);
      Unix._exit 0
  | pid ->
      wait_for_socket sock;
      let c = Client.connect sock in
      Client.send c Protocol.Ping;
      (match Client.recv c with
      | Ok Protocol.Pong -> ()
      | other ->
          Alcotest.failf "expected pong, got %s"
            (match other with Ok r -> Protocol.encode_response r | Error m -> m));
      let spec_text = Spec.to_string small_spec in
      let expected = Spec.point_count small_spec in
      let streamed = ref 0 in
      (match
         Client.submit c ~spec_text
           ~on_event:(fun resp ->
             match resp with Protocol.Point _ -> incr streamed | _ -> ())
           ()
       with
      | Ok (Protocol.Done { points; complete; _ }) ->
          Alcotest.(check int) "streamed" expected !streamed;
          Alcotest.(check int) "done count" expected points;
          Alcotest.(check bool) "complete" true complete
      | Ok r ->
          Alcotest.failf "unexpected final frame %s" (Protocol.encode_response r)
      | Error m -> Alcotest.failf "submit: %s" m);
      Client.send c Protocol.Stats;
      (match Client.recv c with
      | Ok (Protocol.Stats_reply st) ->
          Alcotest.(check bool) "requests counted" true (st.st_requests >= 1);
          Alcotest.(check int) "points counted" expected st.st_points;
          Alcotest.(check int) "workers" 2 st.st_workers;
          Alcotest.(check bool) "workers spawned" true (st.st_spawned >= 2);
          Alcotest.(check int) "nothing in flight" 0 st.st_in_flight;
          Alcotest.(check bool) "uptime sane" true (st.st_uptime_s >= 0.0);
          Alcotest.(check bool) "heap words sane" true (st.st_heap_words > 0);
          Alcotest.(check int) "no crashes" 0 st.st_crashed
      | other ->
          Alcotest.failf "expected stats, got %s"
            (match other with
            | Ok r -> Protocol.encode_response r
            | Error m -> m));
      Client.send c Protocol.Shutdown;
      (match Client.recv c with
      | Ok Protocol.Bye -> ()
      | _ -> Alcotest.fail "expected bye");
      Client.close c;
      let _, status = Unix.waitpid [] pid in
      (match status with
      | Unix.WEXITED 0 -> ()
      | Unix.WEXITED n -> Alcotest.failf "daemon exited %d" n
      | _ -> Alcotest.fail "daemon killed");
      Alcotest.(check bool) "socket unlinked" false (Sys.file_exists sock);
      (* The shutdown path must leave a parseable metrics textfile and
         a trace document behind. *)
      Alcotest.(check bool) "metrics written" true (Sys.file_exists metrics);
      let slurp p =
        let ic = open_in_bin p in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        s
      in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          if i + nn > nh then false
          else String.sub hay i nn = needle || go (i + 1)
        in
        go 0
      in
      let prom = slurp metrics in
      Alcotest.(check bool) "metrics mention the service" true
        (contains prom "amsvp_serve_in_flight");
      Alcotest.(check bool) "trace written" true (Sys.file_exists trace);
      let tr = slurp trace in
      Alcotest.(check bool) "trace is a trace document" true
        (contains tr "\"traceEvents\"");
      List.iter Sys.remove [ metrics; trace ]

(* Induce per-point timeouts with a microscopic default budget: every
   point must come back with a Timeout verdict and the stats reply must
   surface the count. *)
let test_daemon_timeout_counters () =
  let sock = tmp (Printf.sprintf "amsvp_serve_to_%d.sock" (Unix.getpid ())) in
  if Sys.file_exists sock then Sys.remove sock;
  match Unix.fork () with
  | 0 ->
      (try
         Daemon.serve
           {
             (Daemon.default_config ~socket_path:sock) with
             workers = 2;
             point_timeout_s = Some 1e-9;
           }
       with _ -> Unix._exit 1);
      Unix._exit 0
  | pid ->
      wait_for_socket sock;
      let c = Client.connect sock in
      let spec_text = Spec.to_string small_spec in
      let expected = Spec.point_count small_spec in
      (match Client.submit c ~spec_text () with
      | Ok (Protocol.Done { points; unhealthy; complete; _ }) ->
          Alcotest.(check int) "all points resolved" expected points;
          Alcotest.(check bool) "timeouts flagged unhealthy" true
            (unhealthy > 0);
          Alcotest.(check bool) "complete" true complete
      | Ok r ->
          Alcotest.failf "unexpected final frame %s" (Protocol.encode_response r)
      | Error m -> Alcotest.failf "submit: %s" m);
      Client.send c Protocol.Stats;
      (match Client.recv c with
      | Ok (Protocol.Stats_reply st) ->
          Alcotest.(check bool)
            (Printf.sprintf "timeouts surfaced (got %d)" st.st_timeouts)
            true (st.st_timeouts > 0)
      | _ -> Alcotest.fail "expected stats");
      Client.send c Protocol.Shutdown;
      (match Client.recv c with
      | Ok Protocol.Bye -> ()
      | _ -> Alcotest.fail "expected bye");
      Client.close c;
      let _, status = Unix.waitpid [] pid in
      match status with
      | Unix.WEXITED 0 -> ()
      | Unix.WEXITED n -> Alcotest.failf "daemon exited %d" n
      | _ -> Alcotest.fail "daemon killed"

(* A daemon under --werror must answer a submit whose value-range
   screen errors with a structured [Rejected] frame carrying the
   diagnostics — and keep serving: the worker never crashes, later
   requests (including a clean sweep) still succeed. *)
let test_daemon_werror_rejection () =
  let sock = tmp (Printf.sprintf "amsvp_serve_we_%d.sock" (Unix.getpid ())) in
  if Sys.file_exists sock then Sys.remove sock;
  match Unix.fork () with
  | 0 ->
      (try
         Daemon.serve
           {
             (Daemon.default_config ~socket_path:sock) with
             workers = 2;
             werror = true;
           }
       with _ -> Unix._exit 1);
      Unix._exit 0
  | pid ->
      wait_for_socket sock;
      let c = Client.connect sock in
      (* An absurdly small amplitude budget: the interpreter proves the
         output bound exceeds it (AMS063, a warning), werror upgrades
         it to an error, the screen rejects the submit. *)
      let doomed =
        { small_spec with Spec.name = "doomed"; amplitude_limit = Some 1e-9 }
      in
      (match Client.submit c ~spec_text:(Spec.to_string doomed) () with
      | Ok (Protocol.Rejected { message; findings }) ->
          Alcotest.(check bool) "message names the screen" true
            (String.length message > 0);
          Alcotest.(check bool) "findings delivered" true (findings <> []);
          Alcotest.(check bool) "AMS063 among them" true
            (List.exists (fun f -> f.Diag.code = "AMS063") findings);
          List.iter
            (fun f ->
              Alcotest.(check bool) "every finding has a registered code"
                true
                (Diag.is_code f.Diag.code))
            findings
      | Ok r ->
          Alcotest.failf "expected rejection, got %s"
            (Protocol.encode_response r)
      | Error m -> Alcotest.failf "submit: %s" m);
      (* Daemon must still be alive and serving. *)
      Client.send c Protocol.Ping;
      (match Client.recv c with
      | Ok Protocol.Pong -> ()
      | _ -> Alcotest.fail "daemon dead after rejection");
      (* A clean spec (no amplitude budget ⇒ no AMS063) still runs. *)
      let expected = Spec.point_count small_spec in
      (match Client.submit c ~spec_text:(Spec.to_string small_spec) () with
      | Ok (Protocol.Done { points; complete; _ }) ->
          Alcotest.(check int) "clean sweep ran" expected points;
          Alcotest.(check bool) "complete" true complete
      | Ok r ->
          Alcotest.failf "unexpected final frame %s"
            (Protocol.encode_response r)
      | Error m -> Alcotest.failf "clean submit: %s" m);
      Client.send c Protocol.Shutdown;
      (match Client.recv c with
      | Ok Protocol.Bye -> ()
      | _ -> Alcotest.fail "expected bye");
      Client.close c;
      let _, status = Unix.waitpid [] pid in
      (match status with
      | Unix.WEXITED 0 -> ()
      | Unix.WEXITED n -> Alcotest.failf "daemon exited %d" n
      | _ -> Alcotest.fail "daemon killed")

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "serve"
    [
      ( "protocol",
        qt [ prop_result_roundtrip; prop_point_frame_roundtrip;
             prop_submit_roundtrip ]
        @ [
            Alcotest.test_case "simple frames round-trip" `Quick
              test_simple_frames_roundtrip;
            Alcotest.test_case "malformed frames rejected" `Quick
              test_malformed_frames_rejected;
          ] );
      ( "telemetry",
        qt [ prop_telemetry_roundtrip ]
        @ [
            Alcotest.test_case "truncated frames torn, results untouched"
              `Quick test_telemetry_truncation;
            Alcotest.test_case "ingest_telemetry_line" `Quick
              test_ingest_telemetry_line;
          ] );
      ( "checkpoint",
        [
          Alcotest.test_case "round-trip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "mismatch and torn tail" `Quick
            test_checkpoint_mismatch_and_torn_tail;
          Alcotest.test_case "resume determinism" `Quick
            test_resume_determinism;
        ] );
      ( "procpool",
        [
          Alcotest.test_case "exactly once" `Quick test_pool_exactly_once;
          Alcotest.test_case "crash re-dispatch" `Quick
            test_pool_crash_redispatch;
          Alcotest.test_case "crash exhausted" `Quick test_pool_crash_exhausted;
          Alcotest.test_case "timeout kill" `Quick test_pool_timeout_kill;
          Alcotest.test_case "drain stops dispatch" `Quick test_pool_drain;
          Alcotest.test_case "workers ship telemetry" `Quick
            test_pool_telemetry_ship;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "end-to-end session" `Quick test_daemon_session;
          Alcotest.test_case "timeout counters surfaced" `Quick
            test_daemon_timeout_counters;
          Alcotest.test_case "werror rejection is structured, daemon survives"
            `Quick test_daemon_werror_rejection;
        ] );
    ]
