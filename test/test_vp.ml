(* Tests for the virtual platform: assembler, ISS, bus/peripherals and
   the Table III platform harness. *)

module Asm = Amsvp_vp.Asm
module Iss = Amsvp_vp.Iss
module Bus = Amsvp_vp.Bus
module Platform = Amsvp_vp.Platform
module Circuits = Amsvp_netlist.Circuits
module Flow = Amsvp_core.Flow

(* A little machine with plain RAM for ISS tests. *)
let machine ?(ram_words = 1024) program =
  let bus = Bus.create () in
  Bus.Ram.attach bus ~base:0 ~size_words:ram_words;
  let image = Asm.assemble program in
  Bus.Ram.load bus ~base:0 image;
  let cpu = Iss.create (Bus.iss_bus bus) in
  (bus, cpu)

let run_steps cpu n =
  for _ = 1 to n do
    Iss.step cpu
  done

(* Assembler *)

let test_asm_encodings () =
  let image = Asm.assemble "addu $t0, $t1, $t2" in
  Alcotest.(check int) "addu" 0x012A4021 image.(0);
  let image = Asm.assemble "lw $t0, 4($sp)" in
  Alcotest.(check int) "lw" 0x8FA80004 image.(0);
  let image = Asm.assemble "lui $t0, 0x1000" in
  Alcotest.(check int) "lui" 0x3C081000 image.(0);
  let image = Asm.assemble "jr $ra" in
  Alcotest.(check int) "jr" 0x03E00008 image.(0)

let test_asm_labels_and_branches () =
  let image = Asm.assemble "top: addiu $t0, $t0, 1\nbne $t0, $t1, top" in
  (* branch offset: -2 instructions relative to pc+4. *)
  Alcotest.(check int) "bne offset" 0x1509FFFE image.(1)

let test_asm_li_expansion () =
  let image = Asm.assemble "li $t0, 0x12345678" in
  Alcotest.(check int) "two words" 2 (Array.length image);
  Alcotest.(check int) "lui" 0x3C081234 image.(0);
  Alcotest.(check int) "ori" 0x35085678 image.(1)

let test_asm_errors () =
  let expect name src =
    Alcotest.(check bool) name true
      (try
         ignore (Asm.assemble src);
         false
       with Asm.Asm_error (_, _) -> true)
  in
  expect "unknown mnemonic" "frobnicate $t0";
  expect "bad register" "addu $t0, $zz, $t1";
  expect "duplicate label" "a: nop\na: nop";
  expect "missing operand" "addu $t0, $t1"

let test_disassemble_roundtrip_samples () =
  Alcotest.(check string) "nop" "nop" (Asm.disassemble_word 0);
  let w = (Asm.assemble "addu $v0, $a0, $a1").(0) in
  Alcotest.(check string) "addu" "addu $v0, $a0, $a1" (Asm.disassemble_word w)

(* ISS *)

let test_iss_arith_and_logic () =
  let _, cpu =
    machine
      {asm|
  li   $t0, 7
  li   $t1, 5
  addu $t2, $t0, $t1
  subu $t3, $t0, $t1
  and  $t4, $t0, $t1
  or   $t5, $t0, $t1
  xor  $t6, $t0, $t1
  slt  $t7, $t1, $t0
|asm}
  in
  run_steps cpu 10;
  Alcotest.(check int) "add" 12 (Iss.reg cpu 10);
  Alcotest.(check int) "sub" 2 (Iss.reg cpu 11);
  Alcotest.(check int) "and" 5 (Iss.reg cpu 12);
  Alcotest.(check int) "or" 7 (Iss.reg cpu 13);
  Alcotest.(check int) "xor" 2 (Iss.reg cpu 14);
  Alcotest.(check int) "slt" 1 (Iss.reg cpu 15)

let test_iss_signed_compare () =
  let _, cpu = machine "li $t0, -3\nslti $t1, $t0, 0\nsltiu $t2, $t0, 0" in
  run_steps cpu 4;
  Alcotest.(check int) "signed" 1 (Iss.reg cpu 9);
  Alcotest.(check int) "unsigned (big value)" 0 (Iss.reg cpu 10)

let test_iss_memory () =
  let _, cpu =
    machine "li $t0, 0x100\nli $t1, 0xBEEF\nsw $t1, 0($t0)\nlw $t2, 0($t0)"
  in
  run_steps cpu 6;
  Alcotest.(check int) "roundtrip" 0xBEEF (Iss.reg cpu 10)

let test_iss_loop () =
  (* Sum 1..10 with a branch loop. *)
  let _, cpu =
    machine
      {asm|
  li   $t0, 10
  li   $t1, 0
loop:
  addu $t1, $t1, $t0
  addiu $t0, $t0, -1
  bne  $t0, $zero, loop
  nop
halt:
  j halt
|asm}
  in
  run_steps cpu 100;
  Alcotest.(check int) "sum" 55 (Iss.reg cpu 9)

let test_iss_jal_jr () =
  let _, cpu =
    machine
      {asm|
  jal sub
  nop
after:
  j after
sub:
  li $v0, 99
  jr $ra
|asm}
  in
  run_steps cpu 10;
  Alcotest.(check int) "return value" 99 (Iss.reg cpu 2)

let test_iss_register_zero () =
  let _, cpu = machine "li $t0, 5\naddu $zero, $t0, $t0\nmove $t1, $zero" in
  run_steps cpu 4;
  Alcotest.(check int) "zero stays zero" 0 (Iss.reg cpu 9)

let test_iss_decode_error () =
  let bus = Bus.create () in
  Bus.Ram.attach bus ~base:0 ~size_words:4;
  Bus.Ram.load bus ~base:0 [| 0xFC000000 |];
  let cpu = Iss.create (Bus.iss_bus bus) in
  Alcotest.(check bool) "decode error" true
    (try
       Iss.step cpu;
       false
     with Iss.Decode_error (_, 0) -> true)

let test_iss_mult_div () =
  let _, cpu =
    machine
      "li $t0, 7\nli $t1, -3\nmult $t0, $t1\nmflo $t2\nli $t3, 17\nli $t4, 5\ndiv $t3, $t4\nmflo $t5\nmfhi $t6"
  in
  run_steps cpu 14;
  Alcotest.(check int) "mult lo" ((-21) land 0xFFFFFFFF) (Iss.reg cpu 10);
  Alcotest.(check int) "div quotient" 3 (Iss.reg cpu 13);
  Alcotest.(check int) "div remainder" 2 (Iss.reg cpu 14)

let test_iss_bytes () =
  let _, cpu =
    machine
      "li $t0, 0x100\nli $t1, 0x11223344\nsw $t1, 0($t0)\nlbu $t2, 1($t0)\nli $t3, 0xAB\nsb $t3, 2($t0)\nlw $t4, 0($t0)\nli $t5, 0x80\nsb $t5, 4($t0)\nlb $t6, 4($t0)"
  in
  run_steps cpu 16;
  (* little-endian byte lanes within the stored word *)
  Alcotest.(check int) "lbu byte 1" 0x33 (Iss.reg cpu 10);
  Alcotest.(check int) "sb merged" 0x11AB3344 (Iss.reg cpu 12);
  Alcotest.(check int) "lb sign-extends" ((-128) land 0xFFFFFFFF) (Iss.reg cpu 14)

let test_iss_regimm_branches () =
  let _, cpu =
    machine
      {asm|
  li   $t0, -5
  bltz $t0, neg
  li   $t1, 111
neg:
  li   $t2, 1
  bgtz $t2, pos
  li   $t3, 222
pos:
  li   $t4, 42
halt:
  j halt
|asm}
  in
  run_steps cpu 20;
  Alcotest.(check int) "bltz taken" 0 (Iss.reg cpu 9);
  Alcotest.(check int) "bgtz taken" 0 (Iss.reg cpu 11);
  Alcotest.(check int) "landed" 42 (Iss.reg cpu 12)

let test_iss_interrupt_flow () =
  let _, cpu =
    machine
      {asm|
  j main
.org 0x80
  li  $s7, 0xAB        # handler marker
  eret
main:
  li   $t0, 1
  mtc0 $t0, $12        # enable interrupts
idle:
  addiu $s0, $s0, 1
  j idle
|asm}
  in
  (* No interrupt while disabled. *)
  run_steps cpu 10;
  Alcotest.(check int) "none taken yet" 0 (Iss.interrupts_taken cpu);
  Iss.set_irq cpu true;
  run_steps cpu 1;
  (* The interrupt is taken at the next step boundary. *)
  Alcotest.(check int) "taken" 1 (Iss.interrupts_taken cpu);
  Alcotest.(check bool) "masked inside handler" false (Iss.interrupts_enabled cpu);
  Iss.set_irq cpu false;
  run_steps cpu 5;
  Alcotest.(check int) "handler marker" 0xAB (Iss.reg cpu 23);
  Alcotest.(check bool) "re-enabled after eret" true (Iss.interrupts_enabled cpu);
  let idle_before = Iss.reg cpu 16 in
  run_steps cpu 10;
  Alcotest.(check bool) "main loop resumed" true (Iss.reg cpu 16 > idle_before)

(* Bus and peripherals *)

let test_bus_decode_error () =
  let bus = Bus.create () in
  Bus.Ram.attach bus ~base:0 ~size_words:4;
  let b = Bus.iss_bus bus in
  Alcotest.(check bool) "unmapped" true
    (try
       ignore (b.Iss.read32 0x8000_0000);
       false
     with Bus.Bus_error 0x8000_0000 -> true)

let test_bus_overlap_rejected () =
  let bus = Bus.create () in
  Bus.Ram.attach bus ~base:0 ~size_words:16;
  Alcotest.(check bool) "overlap" true
    (try
       Bus.Ram.attach bus ~base:32 ~size_words:16;
       false
     with Invalid_argument _ -> true)

let test_uart_collects_output () =
  let bus = Bus.create () in
  let uart = Bus.Uart.attach bus ~base:0x1000 in
  let b = Bus.iss_bus bus in
  String.iter (fun c -> b.Iss.write32 0x1000 (Char.code c)) "hi!";
  Alcotest.(check string) "bytes" "hi!" (Bus.Uart.output uart);
  Alcotest.(check int) "count" 3 (Bus.Uart.tx_count uart);
  Alcotest.(check int) "status ready" 1 (b.Iss.read32 0x1004)

let test_adc_irq_semantics () =
  let bus = Bus.create () in
  let adc = Bus.Adc.attach bus ~base:0x2000 in
  let b = Bus.iss_bus bus in
  Bus.Adc.set_sample adc ~volts:1.0;
  Alcotest.(check bool) "no irq while disabled" false (Bus.Adc.irq_pending adc);
  b.Iss.write32 0x2008 1;
  Bus.Adc.set_sample adc ~volts:2.0;
  Alcotest.(check bool) "irq raised" true (Bus.Adc.irq_pending adc);
  ignore (b.Iss.read32 0x2000);
  Alcotest.(check bool) "reading the sample acks" false (Bus.Adc.irq_pending adc)

let test_adc_sample_conversion () =
  let bus = Bus.create () in
  let adc = Bus.Adc.attach bus ~base:0x2000 in
  let b = Bus.iss_bus bus in
  Bus.Adc.set_sample adc ~volts:1.25;
  Alcotest.(check int) "microvolts" 1_250_000 (b.Iss.read32 0x2000);
  Bus.Adc.set_sample adc ~volts:(-0.5);
  Alcotest.(check int) "negative two's complement"
    ((-500_000) land 0xFFFFFFFF)
    (b.Iss.read32 0x2000);
  Alcotest.(check int) "sequence" 2 (b.Iss.read32 0x2004)

let rc1_setup () =
  let tc = Circuits.rc_ladder 1 in
  let rep = Flow.abstract_testcase tc ~dt:50e-9 in
  (tc, Some rep.Flow.program)

(* RTL UART *)

module Uart_rtl = Amsvp_vp.Uart_rtl
module De = Amsvp_sysc.De

let test_uart_rtl_frames () =
  let k = De.create () in
  let bus = Bus.create () in
  let u = Uart_rtl.attach k bus ~base:0x1000 ~bit_ps:100 in
  let b = Bus.iss_bus bus in
  String.iter (fun c -> b.Iss.write32 0x1000 (Char.code c)) "Ok!";
  Alcotest.(check int) "queued" 3 (Uart_rtl.queued u);
  De.run k;
  Alcotest.(check string) "decoded off the wire" "Ok!" (Uart_rtl.decoded u);
  Alcotest.(check int) "frames" 3 (Uart_rtl.frames_sent u);
  Alcotest.(check bool) "line idles high" true (De.Signal.read (Uart_rtl.line u));
  (* 3 frames x 10 bits x 100 ps, starting in the first delta. *)
  Alcotest.(check int) "wire time" 3000 (De.now_ps k)

let test_uart_rtl_status () =
  let k = De.create () in
  let bus = Bus.create () in
  let u = Uart_rtl.attach k bus ~base:0x1000 ~bit_ps:100 in
  ignore u;
  let b = Bus.iss_bus bus in
  Alcotest.(check int) "idle status" 0 (b.Iss.read32 0x1004);
  b.Iss.write32 0x1000 0x41;
  Alcotest.(check int) "busy status" 1 (b.Iss.read32 0x1004);
  De.run k;
  Alcotest.(check int) "idle again" 0 (b.Iss.read32 0x1004)

let test_platform_rtl_uart_decodes () =
  (* The Verilog-grain platform sends the UART traffic over a real
     serial line; the decoded bytes must match the transaction-level
     output of the SystemC-grain run (up to frames still in flight at
     t_stop). *)
  let tc, program = rc1_setup () in
  let rtl =
    Platform.run ~cpu_hz:20e6 ~testcase:tc ~program
      ~binding:(Platform.Cosim { rtl_grain = true; substeps = 2; iterations = 1; fidelity = `Paper })
      ~dt:1e-6 ~t_stop:2e-3 ()
  in
  let tlm =
    Platform.run ~cpu_hz:20e6 ~testcase:tc ~program
      ~binding:(Platform.Cosim { rtl_grain = false; substeps = 2; iterations = 1; fidelity = `Paper })
      ~dt:1e-6 ~t_stop:2e-3 ()
  in
  let r = rtl.Platform.uart_output and t = tlm.Platform.uart_output in
  Alcotest.(check bool) "wire carried data" true (String.length r > 0);
  Alcotest.(check bool) "at most two frames in flight" true
    (String.length t - String.length r <= 2);
  Alcotest.(check string) "decoded bytes are a prefix" r
    (String.sub t 0 (String.length r))

(* Platform *)

let test_platform_bindings_agree () =
  let tc, program = rc1_setup () in
  let run binding =
    Platform.run ~cpu_hz:20e6 ~testcase:tc ~program ~binding ~dt:50e-9
      ~t_stop:0.5e-3 ()
  in
  let eln = run Platform.Eln in
  let de = run Platform.De_model in
  let tdf = run Platform.Tdf in
  Alcotest.(check string) "de uart = eln uart" eln.Platform.uart_output
    de.Platform.uart_output;
  Alcotest.(check string) "tdf uart = eln uart" eln.Platform.uart_output
    tdf.Platform.uart_output;
  Alcotest.(check int) "same instruction count" eln.Platform.instructions
    de.Platform.instructions;
  Alcotest.(check bool) "uart saw data" true
    (String.length eln.Platform.uart_output > 0)

let test_platform_cosim_syncs () =
  let tc, program = rc1_setup () in
  let r =
    Platform.run ~cpu_hz:20e6 ~testcase:tc ~program
      ~binding:(Platform.Cosim { rtl_grain = false; substeps = 2; iterations = 1; fidelity = `Paper })
      ~dt:1e-6 ~t_stop:1e-4 ()
  in
  (* Two marshalled exchanges per analog step (in and out). *)
  Alcotest.(check int) "lock-step syncs" 200 r.Platform.cosim_syncs;
  Alcotest.(check int) "samples" 100 r.Platform.analog_samples

let test_platform_cpp_no_kernel () =
  let tc, program = rc1_setup () in
  let r =
    Platform.run ~cpu_hz:20e6 ~testcase:tc ~program ~binding:Platform.Cpp
      ~dt:1e-6 ~t_stop:1e-4 ()
  in
  Alcotest.(check bool) "no DE stats for plain loop" true
    (r.Platform.de_stats = None);
  Alcotest.(check int) "instructions ran" 2000 r.Platform.instructions

let interrupt_firmware =
  {asm|
        j    main
.org 0x80
isr:
        lw   $k0, 0($t0)        # read the sample: acknowledges the IRQ
        addu $s1, $s1, $k0
        addiu $s2, $s2, 1
        andi $k1, $s2, 63
        bne  $k1, $zero, iret
        srl  $k1, $s1, 16
        andi $k1, $k1, 255
        sw   $k1, 0($t1)        # UART
iret:
        eret
main:
        li   $t0, 0x10001000    # ADC
        li   $t1, 0x10000000    # UART
        li   $t2, 1
        sw   $t2, 8($t0)        # ADC interrupt enable
        mtc0 $t2, $12           # CPU interrupts on
idle:
        addiu $s0, $s0, 1
        j    idle
|asm}

let test_platform_interrupt_driven () =
  (* Interrupt-driven firmware: the ISR pulls every sample and the idle
     loop keeps spinning between interrupts. *)
  let tc, program = rc1_setup () in
  let r =
    Platform.run ~cpu_hz:20e6 ~asm_src:interrupt_firmware ~testcase:tc ~program
      ~binding:Platform.Cpp ~dt:1e-6 ~t_stop:1e-3 ()
  in
  (* One interrupt per sample once the firmware has enabled the ADC
     IRQ (the very first samples can land before the enable). *)
  Alcotest.(check bool)
    (Printf.sprintf "interrupts (%d) track samples (%d)" r.Platform.interrupts
       r.Platform.analog_samples)
    true
    (r.Platform.analog_samples - r.Platform.interrupts <= 2
    && r.Platform.interrupts > 0);
  Alcotest.(check bool) "uart traffic" true (String.length r.Platform.uart_output > 0);
  let de =
    Platform.run ~cpu_hz:20e6 ~asm_src:interrupt_firmware ~testcase:tc ~program
      ~binding:Platform.De_model ~dt:1e-6 ~t_stop:1e-3 ()
  in
  (* The kernel interleaves CPU cycles and analog ticks at a slightly
     different phase than the plain loop, so byte values can shift by a
     sample; the traffic volume must match. *)
  Alcotest.(check int) "same uart volume under the DE kernel"
    (String.length r.Platform.uart_output)
    (String.length de.Platform.uart_output);
  Alcotest.(check bool) "DE interrupts fire" true (de.Platform.interrupts > 0)

let test_platform_requires_program () =
  let tc, _ = rc1_setup () in
  Alcotest.(check bool) "missing program" true
    (try
       ignore
         (Platform.run ~testcase:tc ~program:None ~binding:Platform.De_model
            ~dt:1e-6 ~t_stop:1e-4 ());
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "vp"
    [
      ( "asm",
        [
          Alcotest.test_case "encodings" `Quick test_asm_encodings;
          Alcotest.test_case "labels and branches" `Quick
            test_asm_labels_and_branches;
          Alcotest.test_case "li expansion" `Quick test_asm_li_expansion;
          Alcotest.test_case "errors" `Quick test_asm_errors;
          Alcotest.test_case "disassembly" `Quick test_disassemble_roundtrip_samples;
        ] );
      ( "iss",
        [
          Alcotest.test_case "arith and logic" `Quick test_iss_arith_and_logic;
          Alcotest.test_case "signed compare" `Quick test_iss_signed_compare;
          Alcotest.test_case "memory" `Quick test_iss_memory;
          Alcotest.test_case "loop" `Quick test_iss_loop;
          Alcotest.test_case "jal/jr" `Quick test_iss_jal_jr;
          Alcotest.test_case "mult/div" `Quick test_iss_mult_div;
          Alcotest.test_case "byte access" `Quick test_iss_bytes;
          Alcotest.test_case "regimm branches" `Quick test_iss_regimm_branches;
          Alcotest.test_case "interrupt flow" `Quick test_iss_interrupt_flow;
          Alcotest.test_case "register zero" `Quick test_iss_register_zero;
          Alcotest.test_case "decode error" `Quick test_iss_decode_error;
        ] );
      ( "bus",
        [
          Alcotest.test_case "decode error" `Quick test_bus_decode_error;
          Alcotest.test_case "overlap rejected" `Quick test_bus_overlap_rejected;
          Alcotest.test_case "uart" `Quick test_uart_collects_output;
          Alcotest.test_case "adc" `Quick test_adc_sample_conversion;
          Alcotest.test_case "adc irq" `Quick test_adc_irq_semantics;
        ] );
      ( "uart_rtl",
        [
          Alcotest.test_case "frames over the wire" `Quick test_uart_rtl_frames;
          Alcotest.test_case "status register" `Quick test_uart_rtl_status;
          Alcotest.test_case "platform decodes" `Quick
            test_platform_rtl_uart_decodes;
        ] );
      ( "platform",
        [
          Alcotest.test_case "bindings agree" `Quick test_platform_bindings_agree;
          Alcotest.test_case "co-sim syncs" `Quick test_platform_cosim_syncs;
          Alcotest.test_case "C++ loop" `Quick test_platform_cpp_no_kernel;
          Alcotest.test_case "interrupt-driven firmware" `Quick
            test_platform_interrupt_driven;
          Alcotest.test_case "missing program" `Quick test_platform_requires_program;
        ] );
    ]
