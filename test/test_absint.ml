(* Tests for the abstract interpreter: the soundness property (every
   concrete trace value of a random program lies inside the proven
   interval of its target, non-finite values only where the flags
   allow them), the step-accurate MUST proof (whenever
   [prove_unhealthy] claims a step, the concrete run really trips the
   watchdog there), and the proven-constant facts pipeline into the
   bytecode compiler (no facts — bit-identical; real facts — still
   bit-identical, by the nonzero-constants-only rule). *)

module Sfprogram = Amsvp_sf.Sfprogram
module Compile = Amsvp_sf.Compile
module Absint = Amsvp_analysis.Absint

(* ---- random signal-flow programs ----

   Shape: one input [u], targets [x0 .. x(k-1)] assigned in order.
   Assignment [i] may read [u], earlier targets of the same step, and
   1- or 2-delayed samples of any target — exactly the reference set
   {!Sfprogram.make} validates, so generation never raises. *)

let gen_const =
  QCheck.Gen.oneofl
    [ 0.0; 1.0; -1.0; 0.5; -0.75; 2.0; 1.0e-3; -1.0e-3; 12.5; 1.0e3;
      -3.0e3; 1.0e10; -1.0e10; 0.1 ]

let gen_fun =
  QCheck.Gen.oneofl
    [ Expr.Sin; Expr.Cos; Expr.Exp; Expr.Ln; Expr.Sqrt; Expr.Abs; Expr.Tanh ]

(* [i] is the index of the assignment under construction; [k] the
   total target count. *)
let gen_expr ~i ~k =
  let open QCheck.Gen in
  let target j = Expr.signal (Printf.sprintf "x%d" j) in
  let leaf =
    frequency
      [
        (3, map Expr.const gen_const);
        (2, return (Expr.var (Expr.signal "u")));
        ( (if i > 0 then 2 else 0),
          map (fun j -> Expr.var (target (j mod max 1 i))) (int_bound 7) );
        ( 2,
          map2
            (fun j d -> Expr.var (Expr.delayed (target (j mod k)) (1 + (d mod 2))))
            (int_bound 7) (int_bound 1) );
      ]
  in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        frequency
          [
            (2, leaf);
            (2, map2 Expr.( + ) (self (depth - 1)) (self (depth - 1)));
            (1, map2 Expr.( - ) (self (depth - 1)) (self (depth - 1)));
            (2, map2 Expr.( * ) (self (depth - 1)) (self (depth - 1)));
            (1, map2 Expr.( / ) (self (depth - 1)) (self (depth - 1)));
            (1, map Expr.neg (self (depth - 1)));
            (1, map2 (fun f a -> Expr.App (f, a)) gen_fun (self (depth - 1)));
          ])
    2

let gen_program =
  let open QCheck.Gen in
  int_range 1 4 >>= fun k ->
  let rec exprs i acc =
    if i = k then return (List.rev acc)
    else gen_expr ~i ~k >>= fun e -> exprs (i + 1) (e :: acc)
  in
  exprs 0 [] >|= fun es ->
  let assignments =
    List.mapi
      (fun i e ->
        { Sfprogram.target = Expr.signal (Printf.sprintf "x%d" i); expr = e })
      es
  in
  Sfprogram.make ~name:"rand" ~inputs:[ "u" ]
    ~outputs:[ Expr.signal (Printf.sprintf "x%d" (k - 1)) ]
    ~assignments ~dt:1e-6

(* A fixed input sequence inside the default [-1, 1] box. *)
let gen_stimulus = QCheck.Gen.(array_size (return 48) (float_range (-1.0) 1.0))

let gen_case =
  QCheck.Gen.pair gen_program gen_stimulus
  |> QCheck.make ~print:(fun (p, us) ->
         Format.asprintf "%a@.inputs: %s" Sfprogram.pp p
           (String.concat ", "
              (Array.to_list (Array.map string_of_float us))))

let nsteps = 48

(* Run [p] concretely for [nsteps], returning per-step target values
   (in assignment order) and the output trace. *)
let concrete_trace p (us : float array) =
  let r = Sfprogram.Runner.create p in
  let targets = List.map (fun a -> a.Sfprogram.target) p.Sfprogram.assignments in
  let rows = ref [] in
  for k = 0 to nsteps - 1 do
    Sfprogram.Runner.step r ~inputs:[| us.(k) |];
    let row = List.map (fun t -> (t, Sfprogram.Runner.read r t)) targets in
    rows := row :: !rows
  done;
  List.rev !rows

let itv_of tgt (a : Absint.analysis) =
  match List.assoc_opt tgt a.Absint.a_targets with
  | Some i -> i
  | None -> Alcotest.failf "no interval for %s" (Expr.var_name tgt)

(* Soundness: every value a concrete run produces is inside the proven
   interval of its target — NaN and infinities included, which is what
   [Absint.mem] checks (a non-finite value is a member only when the
   matching flag is set). *)
let prop_analysis_sound =
  QCheck.Test.make ~name:"analyze is sound on concrete traces" ~count:300
    gen_case (fun (p, us) ->
      let a = Absint.analyze p in
      let rows = concrete_trace p us in
      List.iter
        (List.iter (fun (tgt, v) ->
             let itv = itv_of tgt a in
             if not (Absint.mem v itv) then
               QCheck.Test.fail_reportf
                 "%s produced %h outside its proven interval %s"
                 (Expr.var_name tgt) v (Absint.to_string itv)))
        rows;
      (* the output interval additionally covers the initial 0 sample *)
      let out = List.hd p.Sfprogram.outputs in
      (match List.assoc_opt out a.Absint.a_outputs with
      | Some itv when not (Absint.mem 0.0 itv) ->
          QCheck.Test.fail_reportf
            "output interval %s misses the initial sample"
            (Absint.to_string itv)
      | _ -> ());
      true)

(* MUST-proof soundness: when [prove_unhealthy] (fed the exact
   singleton stimulus) claims step [b], the concrete run is really
   unhealthy at step [b]. *)
let prop_must_proof_sound =
  QCheck.Test.make ~name:"prove_unhealthy never claims a healthy run"
    ~count:300 gen_case (fun (p, us) ->
      let amplitude = 1.0e6 in
      let inputs k = [| Absint.const us.(min (k - 1) (nsteps - 1)) |] in
      match
        Absint.prove_unhealthy ~max_steps:nsteps ~amplitude ~inputs p
      with
      | None -> true
      | Some bad ->
          let rows = concrete_trace p us in
          let out = List.hd p.Sfprogram.outputs in
          let v = List.assoc out (List.nth rows (bad.Absint.b_step - 1)) in
          let tripped =
            match bad.Absint.b_kind with
            | `Nonfinite -> not (Float.is_finite v)
            | `Amplitude ->
                (not (Float.is_finite v)) || Float.abs v > amplitude
          in
          if not tripped then
            QCheck.Test.fail_reportf
              "claimed %s at step %d but the concrete output is %h"
              (match bad.Absint.b_kind with
              | `Nonfinite -> "nonfinite"
              | `Amplitude -> "amplitude")
              bad.Absint.b_step v;
          true)

(* ---- proven-constant facts into the bytecode compiler ---- *)

let same_float a b =
  (Float.is_nan a && Float.is_nan b) || Float.equal a b

let trace_with ?facts p us =
  let compiled = Sfprogram.compile ?facts p in
  let r = Sfprogram.Runner.create ~compiled p in
  Array.map
    (fun u ->
      Sfprogram.Runner.step r ~inputs:[| u |];
      Sfprogram.Runner.output r 0)
    us

(* Strengthening the compiler with the facts the analysis proved must
   not move a single bit of the trace: facts are finite nonzero
   constants, so every fold the optimizer performs computes the very
   double the runtime would have. *)
let prop_facts_bit_identical =
  QCheck.Test.make ~name:"constant facts leave traces bit-identical"
    ~count:300 gen_case (fun (p, us) ->
      let base = trace_with p us in
      let empty = trace_with ~facts:[] p us in
      let facts = Absint.constant_facts (Absint.analyze p) in
      let strengthened = trace_with ~facts p us in
      Array.iteri
        (fun i v ->
          if not (same_float v empty.(i)) then
            QCheck.Test.fail_reportf "empty facts moved step %d: %h vs %h" i v
              empty.(i);
          if not (same_float v strengthened.(i)) then
            QCheck.Test.fail_reportf
              "facts %s moved step %d: %h vs %h"
              (String.concat ","
                 (List.map
                    (fun (s, c) -> Printf.sprintf "%d=%g" s c)
                    facts))
              i v strengthened.(i))
        base;
      true)

(* ---- domain unit checks ---- *)

let test_domain_basics () =
  let open Absint in
  Alcotest.(check bool) "const 1 is singleton" true
    (singleton (const 1.0) = Some 1.0);
  Alcotest.(check bool) "nan const has flag" true (const Float.nan).nan;
  Alcotest.(check bool) "div by zero-crossing may blow up" true
    (may_non_finite (div (const 1.0) (interval (-1.0) 1.0)));
  Alcotest.(check bool) "div by zero is definitely non-finite" true
    (definitely_non_finite (div (const 1.0) (const 0.0)));
  Alcotest.(check bool) "join covers both" true
    (let j = join (const 1.0) (const 3.0) in
     mem 1.0 j && mem 3.0 j && mem 2.0 j);
  Alcotest.(check bool) "widen is extensive" true
    (leq (join (const 1.0) (const 3.0))
       (widen (const 1.0) (join (const 1.0) (const 3.0))));
  (match definitely_unhealthy ~amplitude:10.0 (interval 20.0 30.0) with
  | Some `Amplitude -> ()
  | _ -> Alcotest.fail "amplitude breach not proven");
  (match definitely_unhealthy ~amplitude:10.0 (interval 5.0 30.0) with
  | None -> ()
  | Some _ -> Alcotest.fail "healthy value still possible — nothing provable");
  Alcotest.(check bool) "mem respects flags" false
    (mem Float.infinity (interval 0.0 1.0))

let test_constant_facts_exclude_zero () =
  (* x0 = 0 constant must not become a fact (signed-zero hazard); a
     nonzero constant must. *)
  let p =
    Sfprogram.make ~name:"c" ~inputs:[ "u" ]
      ~outputs:[ Expr.signal "x1" ]
      ~assignments:
        [
          { Sfprogram.target = Expr.signal "x0"; expr = Expr.const 0.0 };
          {
            Sfprogram.target = Expr.signal "x1";
            expr = Expr.(const 2.5 + var (Expr.signal "u") * const 0.0);
          };
        ]
      ~dt:1e-6
  in
  let facts = Absint.constant_facts (Absint.analyze p) in
  let layout = Sfprogram.layout_of p in
  let slot v = Sfprogram.layout_slot layout v in
  Alcotest.(check bool) "x0 = 0 excluded" false
    (List.mem_assoc (slot (Expr.signal "x0")) facts);
  Alcotest.(check bool) "x1 = 2.5 proven" true
    (List.assoc_opt (slot (Expr.signal "x1")) facts = Some 2.5)

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "absint"
    [
      ("domain",
        [
          Alcotest.test_case "basics" `Quick test_domain_basics;
          Alcotest.test_case "facts exclude zero" `Quick
            test_constant_facts_exclude_zero;
        ] );
      ( "soundness",
        qt [ prop_analysis_sound; prop_must_proof_sound ] );
      ("facts", qt [ prop_facts_bit_identical ]);
    ]
