(* Differential tests for the two signal-flow execution engines: the
   reference tree-walking interpreter and the register bytecode of
   [Amsvp_sf.Compile] must produce identical traces — within 1 ulp,
   and in practice bit-identical — on randomly generated programs, on
   every built-in paper circuit, and on the checked-in example models,
   including runs whose stimuli inject NaN and infinities. The
   [`Template]/[rebind_compiled] path (what the sweep engine replays)
   is exercised by re-targeting each random program's artifact at a
   constant-perturbed sibling. *)

module Sfprogram = Amsvp_sf.Sfprogram
module Compile = Amsvp_sf.Compile
module Flow = Amsvp_core.Flow
module Circuits = Amsvp_netlist.Circuits
module Metrics = Amsvp_util.Metrics
module Trace = Amsvp_util.Trace
module Stimulus = Amsvp_util.Stimulus
module Wrap = Amsvp_sysc.Wrap
module Parser = Amsvp_vams.Parser
module Elaborate = Amsvp_vams.Elaborate

let ulp_ok a b = Int64.compare (Metrics.ulp_distance a b) 1L <= 0

let check_traces label a b =
  Alcotest.(check int) (label ^ ": sample count") (Trace.length a)
    (Trace.length b);
  for i = 0 to Trace.length a - 1 do
    let va = Trace.value a i and vb = Trace.value b i in
    if not (ulp_ok va vb) then
      Alcotest.failf "%s: sample %d differs: %h vs %h (t=%.9g)" label i va vb
        (Trace.time a i)
  done

(* ---- Built-in circuits, both engines, explicit artifact path ---- *)

let diff_circuit (tc : Circuits.testcase) =
  let p = (Flow.abstract_testcase tc ~dt:1e-6).Flow.program in
  let stimuli = Wrap.stimuli_for p tc.Circuits.stimuli in
  let run runner = Sfprogram.Runner.run runner ~stimuli ~t_stop:2e-3 () in
  let tree = run (Sfprogram.Runner.create ~engine:`Tree p) in
  let byte = run (Sfprogram.Runner.create p) in
  check_traces (tc.Circuits.label ^ " tree/bytecode") tree byte;
  (* Same check through a pre-compiled artifact, as the sweep engine
     and the VP hand one in. *)
  let art = run (Sfprogram.Runner.create ~compiled:(Sfprogram.compile p) p) in
  check_traces (tc.Circuits.label ^ " tree/artifact") tree art

let test_paper_circuits () =
  List.iter diff_circuit (Circuits.all_paper_cases ())

let test_more_circuits () =
  List.iter diff_circuit
    [ Circuits.rc_ladder 4; Circuits.rlc_series (); Circuits.rectifier () ]

let test_non_finite_stimulus () =
  (* A stimulus that turns NaN, then infinite, mid-run: both engines
     must poison the state identically, sample for sample. *)
  List.iter
    (fun label ->
      let tc = Option.get (Circuits.by_name label) in
      let p = (Flow.abstract_testcase tc ~dt:1e-6).Flow.program in
      let stim t =
        if t < 5e-4 then 1.0
        else if t < 1e-3 then nan
        else if t < 1.5e-3 then infinity
        else 0.0
      in
      let stimuli =
        Array.make (List.length p.Sfprogram.inputs) stim
      in
      let run engine =
        Sfprogram.Runner.run
          (Sfprogram.Runner.create ~engine p)
          ~stimuli ~t_stop:2e-3 ()
      in
      check_traces (label ^ " non-finite") (run `Tree) (run `Bytecode))
    [ "RC1"; "RECT"; "OA" ]

(* ---- Example models through the Verilog-AMS front end ---- *)

(* [dune runtest] runs from the test build directory, [dune exec] from
   the project root: resolve the examples next to the executable, one
   level up, where dune mirrors them either way. *)
let example_dir =
  Filename.concat (Filename.dirname Sys.executable_name) "../examples"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let program_of_example file ~top =
  let src = read_file (Filename.concat example_dir file) in
  let flat = Elaborate.flatten (Parser.parse ~file src) ~top in
  let output = Expr.potential "out" "gnd" in
  match Elaborate.classify flat with
  | `Conservative ->
      (Flow.abstract_circuit ~name:top
         (Elaborate.to_circuit flat)
         ~outputs:[ output ] ~dt:1e-6)
        .Flow.program
  | `Signal_flow ->
      Flow.convert_signal_flow ~name:top ~inputs:flat.Elaborate.input_ports
        ~outputs:[ output ]
        ~contributions:(Elaborate.signal_flow_assignments flat)
        ~dt:1e-6

let test_example_models () =
  List.iter
    (fun (file, top) ->
      let p = program_of_example file ~top in
      let stimuli =
        Array.make
          (List.length p.Sfprogram.inputs)
          (Stimulus.square ~period:1e-3 ~low:0.0 ~high:1.0)
      in
      let run engine =
        Sfprogram.Runner.run
          (Sfprogram.Runner.create ~engine p)
          ~stimuli ~t_stop:2e-3 ()
      in
      check_traces (file ^ " tree/bytecode") (run `Tree) (run `Bytecode))
    [ ("rc_lowpass.vams", "rc_lowpass"); ("sf_lowpass.vams", "sf_lowpass") ]

(* ---- Random programs ---- *)

(* The generator grows a valid program directly: assignment [i] may
   read the inputs and targets [0..i-1] at the current time, and any
   target up to [i] (itself included) or an input at delays 1..2 —
   exactly what [Sfprogram.make] admits, so nothing is discarded. *)

let inputs = [ "u0"; "u1" ]
let input_vars = List.map Expr.signal inputs
let target_var i = Expr.signal (Printf.sprintf "s%d" i)

let interesting =
  [|
    0.0; -0.0; 1.0; -1.0; 0.5; -2.0; 3.141592653589793; 1e-12; -1e-12; 1e12;
    1e300; -1e300; 1e-300; 7.25;
  |]

let gen_const =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun i -> interesting.(i mod Array.length interesting)) nat);
        (2, float);
      ])

let gen_fun =
  QCheck.Gen.oneofl
    [ Expr.Sin; Expr.Cos; Expr.Exp; Expr.Ln; Expr.Sqrt; Expr.Abs; Expr.Tanh ]

let gen_cmp = QCheck.Gen.oneofl [ Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge ]

let gen_expr ~cur ~hist =
  let open QCheck.Gen in
  let leaf =
    let vars = Array.of_list (List.map Expr.var (cur @ hist)) in
    frequency
      [
        (2, map Expr.const gen_const);
        (3, map (fun i -> vars.(i mod Array.length vars)) nat);
      ]
  in
  fix
    (fun self n ->
      if n <= 0 then leaf
      else
        let sub = self (n / 2) in
        let cond =
          (* one level of boolean structure over random comparisons *)
          let cmp = map3 (fun c a b -> Expr.Cmp (c, a, b)) gen_cmp sub sub in
          frequency
            [
              (4, cmp);
              (1, map2 (fun a b -> Expr.And (a, b)) cmp cmp);
              (1, map2 (fun a b -> Expr.Or (a, b)) cmp cmp);
              (1, map (fun a -> Expr.Not a) cmp);
            ]
        in
        frequency
          [
            (2, leaf);
            (2, map2 Expr.( + ) sub sub);
            (2, map2 Expr.( - ) sub sub);
            (2, map2 Expr.( * ) sub sub);
            (1, map2 Expr.( / ) sub sub);
            (1, map Expr.neg sub);
            (1, map2 (fun f a -> Expr.App (f, a)) gen_fun sub);
            (1, map3 (fun c a b -> Expr.Cond (c, a, b)) cond sub sub);
          ])
    8

let gen_program =
  let open QCheck.Gen in
  int_range 1 5 >>= fun n_assign ->
  let rec build i acc =
    if i >= n_assign then return (List.rev acc)
    else
      let prior = List.init i target_var in
      let cur = input_vars @ prior in
      let hist =
        List.concat_map
          (fun v -> [ Expr.delayed v 1; Expr.delayed v 2 ])
          (input_vars @ prior @ [ target_var i ])
      in
      gen_expr ~cur ~hist >>= fun e ->
      build (i + 1) ({ Sfprogram.target = target_var i; expr = e } :: acc)
  in
  build 0 [] >|= fun assignments ->
  Sfprogram.make ~name:"rand" ~inputs
    ~outputs:[ target_var (List.length assignments - 1) ]
    ~assignments ~dt:1.0

let gen_stimulus_value =
  QCheck.Gen.(
    frequency
      [
        (6, gen_const);
        (1, return nan);
        (1, return infinity);
        (1, return neg_infinity);
      ])

let arb_case =
  QCheck.make
    ~print:(fun (p, _) -> Format.asprintf "%a" Sfprogram.pp p)
    QCheck.Gen.(
      pair gen_program (array_size (return 24) (pair gen_stimulus_value gen_stimulus_value)))

(* Replace every constant (including those inside conditions) so the
   perturbed program shares the original's shape but no values. *)
let rec perturb_expr e =
  match e with
  | Expr.Const c -> Expr.Const ((c *. 1.5) +. 0.25)
  | Expr.Var _ -> e
  | Expr.Neg a -> Expr.Neg (perturb_expr a)
  | Expr.Add (a, b) -> Expr.Add (perturb_expr a, perturb_expr b)
  | Expr.Sub (a, b) -> Expr.Sub (perturb_expr a, perturb_expr b)
  | Expr.Mul (a, b) -> Expr.Mul (perturb_expr a, perturb_expr b)
  | Expr.Div (a, b) -> Expr.Div (perturb_expr a, perturb_expr b)
  | Expr.Ddt a -> Expr.Ddt (perturb_expr a)
  | Expr.Idt a -> Expr.Idt (perturb_expr a)
  | Expr.App (f, a) -> Expr.App (f, perturb_expr a)
  | Expr.Cond (c, a, b) ->
      Expr.Cond (perturb_cond c, perturb_expr a, perturb_expr b)

and perturb_cond = function
  | Expr.Cmp (c, a, b) -> Expr.Cmp (c, perturb_expr a, perturb_expr b)
  | Expr.And (a, b) -> Expr.And (perturb_cond a, perturb_cond b)
  | Expr.Or (a, b) -> Expr.Or (perturb_cond a, perturb_cond b)
  | Expr.Not a -> Expr.Not (perturb_cond a)

let perturb (p : Sfprogram.t) =
  {
    p with
    Sfprogram.assignments =
      List.map
        (fun (a : Sfprogram.assignment) ->
          { a with Sfprogram.expr = perturb_expr a.Sfprogram.expr })
        p.Sfprogram.assignments;
  }

(* Step two runners in lock-step and compare every assigned target
   after every step — stricter than comparing output traces, since CSE
   and dead-register elimination must not disturb intermediates. *)
let lockstep label p stims ra rb =
  let targets =
    List.map (fun (a : Sfprogram.assignment) -> a.Sfprogram.target)
      p.Sfprogram.assignments
  in
  Array.iteri
    (fun t (a, b) ->
      Sfprogram.Runner.step ra ~inputs:[| a; b |];
      Sfprogram.Runner.step rb ~inputs:[| a; b |];
      List.iter
        (fun v ->
          let va = Sfprogram.Runner.read ra v
          and vb = Sfprogram.Runner.read rb v in
          if not (ulp_ok va vb) then
            QCheck.Test.fail_reportf "%s: step %d, %s: %h vs %h" label t
              (Expr.var_name v) va vb)
        targets)
    stims

let prop_random_programs =
  QCheck.Test.make ~name:"random programs: tree = bytecode = rebound template"
    ~count:300 arb_case (fun (p, stims) ->
      lockstep "tree/bytecode" p stims
        (Sfprogram.Runner.create ~engine:`Tree p)
        (Sfprogram.Runner.create p);
      (* The sweep replay path: a [`Template] artifact compiled from
         [p], re-targeted at the constant-perturbed sibling. *)
      let p2 = perturb p in
      (match Sfprogram.rebind_compiled (Sfprogram.compile ~mode:`Template p) p2 with
      | None ->
          QCheck.Test.fail_reportf
            "rebind refused a same-shape program:@ %a" Sfprogram.pp p2
      | Some art ->
          lockstep "tree/rebound" p2 stims
            (Sfprogram.Runner.create ~engine:`Tree p2)
            (Sfprogram.Runner.create ~compiled:art p2));
      true)

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "engine-diff"
    [
      ( "circuits",
        [
          Alcotest.test_case "paper circuits" `Quick test_paper_circuits;
          Alcotest.test_case "ladder, rlc, rectifier" `Quick
            test_more_circuits;
          Alcotest.test_case "non-finite stimuli" `Quick
            test_non_finite_stimulus;
        ] );
      ( "examples",
        [ Alcotest.test_case "example models" `Quick test_example_models ] );
      ("property", qt [ prop_random_programs ]);
    ]
