(* Journal: bounded, domain-safe structured event ring.

   The concurrency tests pin down the merge contract the sweep pool
   relies on: events emitted from N domains are all retained (within
   capacity), merge into one total order consistent with every
   domain's program order, and the merged order is deterministic —
   reading twice gives the same sequence. *)

module Journal = Amsvp_obs.Journal

let fresh () =
  Journal.reset ();
  Journal.enable ()

let teardown () = Journal.disable ()

(* Events of one test, selected by category so tests sharing the
   process-wide ring do not see each other. *)
let mine cat = List.filter (fun e -> e.Journal.cat = cat) (Journal.events ())

let strictly_increasing = function
  | [] -> true
  | seqs -> List.for_all2 ( < ) seqs (List.tl seqs @ [ max_int ])

let test_disabled_noop () =
  Journal.reset ();
  Journal.disable ();
  Journal.emit ~cat:"jt.noop" "nothing" [];
  Alcotest.(check int) "no event recorded" 0 (List.length (mine "jt.noop"))

let test_emit_fields () =
  fresh ();
  Journal.emit ~severity:Journal.Warn ~step:7 ~time:1.5e-3 ~cat:"jt.fields"
    "evt"
    [
      ("f", Journal.F 2.5); ("i", Journal.I (-3)); ("s", Journal.S "a\"b");
      ("b", Journal.B true);
    ];
  (match mine "jt.fields" with
  | [ e ] ->
      Alcotest.(check string) "name" "evt" e.Journal.name;
      Alcotest.(check int) "step" 7 e.Journal.step;
      Alcotest.(check (float 0.0)) "time" 1.5e-3 e.Journal.time;
      Alcotest.(check bool) "severity" true (e.Journal.severity = Journal.Warn);
      let j = Journal.event_to_json e in
      let has s =
        let n = String.length s and m = String.length j in
        let rec go i = i + n <= m && (String.sub j i n = s || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "json has payload float" true (has "\"f\":2.5");
      Alcotest.(check bool) "json escapes strings" true (has "a\\\"b");
      Alcotest.(check bool) "json has step" true (has "\"step\":7")
  | es -> Alcotest.failf "expected 1 event, got %d" (List.length es));
  (* step and time are omitted from JSON when left at their defaults. *)
  Journal.emit ~cat:"jt.fields2" "bare" [];
  (match mine "jt.fields2" with
  | [ e ] ->
      let j = Journal.event_to_json e in
      let lacks s =
        let n = String.length s and m = String.length j in
        let rec go i = i + n > m || (String.sub j i n <> s && go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "no step key" true (lacks "\"step\"");
      Alcotest.(check bool) "no time key" true (lacks "\"time\"")
  | es -> Alcotest.failf "expected 1 event, got %d" (List.length es));
  teardown ()

let test_ring_overwrites_oldest () =
  fresh ();
  (* Capacity is fixed when a domain's buffer is first created, so the
     bounded behaviour is exercised in a fresh domain. *)
  let old_cap = Journal.capacity () in
  Journal.set_capacity 8;
  let dropped0 = Journal.dropped () in
  let d =
    Domain.spawn (fun () ->
        for i = 1 to 20 do
          Journal.emit ~cat:"jt.ring" "e" [ ("i", Journal.I i) ]
        done)
  in
  Domain.join d;
  Journal.set_capacity old_cap;
  let es = mine "jt.ring" in
  Alcotest.(check int) "capacity retained" 8 (List.length es);
  Alcotest.(check int) "losses accounted" 12 (Journal.dropped () - dropped0);
  (* Oldest overwritten: the survivors are exactly the last 8 emits. *)
  let is' =
    List.map
      (fun e ->
        match e.Journal.payload with
        | [ ("i", Journal.I i) ] -> i
        | _ -> Alcotest.fail "payload shape")
      es
  in
  Alcotest.(check (list int)) "last events retained" [ 13; 14; 15; 16; 17; 18; 19; 20 ] is';
  teardown ()

(* The tentpole concurrency contract, as a deterministic stress test:
   4 domains x 500 events, no losses, one total order, program order
   preserved per domain, merge stable across reads. *)
let test_concurrent_merge () =
  fresh ();
  let n_dom = 4 and per_dom = 500 in
  let dropped0 = Journal.dropped () in
  let doms =
    List.init n_dom (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_dom do
              Journal.emit ~cat:"jt.conc" "e"
                [ ("d", Journal.I d); ("i", Journal.I i) ]
            done))
  in
  List.iter Domain.join doms;
  let es = mine "jt.conc" in
  Alcotest.(check int) "no event lost" (n_dom * per_dom) (List.length es);
  Alcotest.(check int) "no drops" 0 (Journal.dropped () - dropped0);
  let seqs = List.map (fun e -> e.Journal.seq) es in
  Alcotest.(check bool) "seq strictly increasing" true
    (strictly_increasing seqs);
  (* Per-domain subsequences keep each domain's program order. *)
  let last = Array.make n_dom 0 in
  List.iter
    (fun e ->
      match e.Journal.payload with
      | [ ("d", Journal.I d); ("i", Journal.I i) ] ->
          Alcotest.(check bool) "program order preserved" true (i > last.(d));
          last.(d) <- i
      | _ -> Alcotest.fail "payload shape")
    es;
  Array.iteri
    (fun d n -> Alcotest.(check int) (Printf.sprintf "domain %d complete" d) per_dom n)
    last;
  (* Deterministic merge: a second read yields the same sequence. *)
  let seqs' = List.map (fun e -> e.Journal.seq) (mine "jt.conc") in
  Alcotest.(check (list int)) "merge is stable" seqs seqs';
  teardown ()

(* Randomised version of the same property: arbitrary per-domain event
   counts, same three invariants. *)
let prop_concurrent_counts =
  QCheck.Test.make ~count:25 ~name:"journal: concurrent emits merge losslessly"
    QCheck.(list_of_size (Gen.int_range 1 4) (int_range 0 50))
    (fun counts ->
      fresh ();
      let cat = "jt.prop" in
      let doms =
        List.mapi
          (fun d k ->
            Domain.spawn (fun () ->
                for i = 1 to k do
                  Journal.emit ~cat "e" [ ("d", Journal.I d); ("i", Journal.I i) ]
                done))
          counts
      in
      List.iter Domain.join doms;
      let es = mine cat in
      teardown ();
      let total = List.fold_left ( + ) 0 counts in
      let seq_sorted = strictly_increasing (List.map (fun e -> e.Journal.seq) es) in
      let order_kept =
        let last = Array.make (List.length counts) 0 in
        List.for_all
          (fun e ->
            match e.Journal.payload with
            | [ ("d", Journal.I d); ("i", Journal.I i) ] ->
                let ok = i > last.(d) in
                last.(d) <- i;
                ok
            | _ -> false)
          es
      in
      List.length es = total && seq_sorted && order_kept)

(* ---- incremental sink ---- *)

let read_lines path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | line -> go (line :: acc)
      | exception End_of_file ->
          close_in ic;
          List.rev acc
    in
    go []
  end

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let rm path = if Sys.file_exists path then Sys.remove path

let test_sink_incremental_flush () =
  let path = tmp "amsvp_journal_sink.jsonl" in
  rm path;
  fresh ();
  Journal.attach_sink path;
  Journal.emit ~cat:"jt.sink" "a" [];
  Journal.emit ~cat:"jt.sink" "b" [];
  Journal.flush ();
  let n1 = List.length (read_lines path) in
  Alcotest.(check bool) "first flush wrote" true (n1 >= 2);
  (* A second flush with nothing new appends nothing... *)
  Journal.flush ();
  Alcotest.(check int) "idempotent flush" n1 (List.length (read_lines path));
  (* ...and later events append without rewriting the prefix. *)
  Journal.emit ~cat:"jt.sink" "c" [];
  Journal.detach_sink ();
  Alcotest.(check int) "append only" (n1 + 1) (List.length (read_lines path));
  (* Detached: flush is a no-op again. *)
  Journal.emit ~cat:"jt.sink" "d" [];
  Journal.flush ();
  Alcotest.(check int) "detached" (n1 + 1) (List.length (read_lines path));
  rm path;
  teardown ()

let test_sink_rotation () =
  let path = tmp "amsvp_journal_rot.jsonl" in
  rm path;
  rm (path ^ ".1");
  rm (path ^ ".2");
  fresh ();
  (* Tiny limit: every flush of one event crosses it and rotates. *)
  Journal.attach_sink ~max_bytes:64 ~keep:2 path;
  for i = 1 to 4 do
    Journal.emit ~cat:"jt.rot" "e" [ ("i", Journal.I i) ];
    Journal.flush ()
  done;
  Alcotest.(check bool) "rotated once" true (Sys.file_exists (path ^ ".1"));
  Alcotest.(check bool) "rotated twice" true (Sys.file_exists (path ^ ".2"));
  Alcotest.(check bool) "keep bound respected" false
    (Sys.file_exists (path ^ ".3"));
  (* Nothing lost across the kept generations: every line everywhere is
     valid single-line JSON and the newest file holds the newest event. *)
  let all =
    read_lines (path ^ ".2") @ read_lines (path ^ ".1") @ read_lines path
  in
  Alcotest.(check bool) "kept recent events" true (List.length all >= 2);
  List.iter
    (fun l ->
      Alcotest.(check bool) "line is json" true
        (String.length l > 0 && l.[0] = '{'))
    all;
  Journal.detach_sink ();
  rm path;
  rm (path ^ ".1");
  rm (path ^ ".2");
  teardown ()

let () =
  Alcotest.run "journal"
    [
      ( "basics",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
          Alcotest.test_case "emit fields and json" `Quick test_emit_fields;
          Alcotest.test_case "ring overwrites oldest" `Quick
            test_ring_overwrites_oldest;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "4-domain merge" `Quick test_concurrent_merge;
          QCheck_alcotest.to_alcotest prop_concurrent_counts;
        ] );
      ( "sink",
        [
          Alcotest.test_case "incremental flush" `Quick
            test_sink_incremental_flush;
          Alcotest.test_case "size-based rotation" `Quick test_sink_rotation;
        ] );
    ]
