(* Journal: bounded, domain-safe structured event ring.

   The concurrency tests pin down the merge contract the sweep pool
   relies on: events emitted from N domains are all retained (within
   capacity), merge into one total order consistent with every
   domain's program order, and the merged order is deterministic —
   reading twice gives the same sequence. *)

module Journal = Amsvp_obs.Journal

let fresh () =
  Journal.reset ();
  Journal.enable ()

let teardown () = Journal.disable ()

(* Events of one test, selected by category so tests sharing the
   process-wide ring do not see each other. *)
let mine cat = List.filter (fun e -> e.Journal.cat = cat) (Journal.events ())

let strictly_increasing = function
  | [] -> true
  | seqs -> List.for_all2 ( < ) seqs (List.tl seqs @ [ max_int ])

let test_disabled_noop () =
  Journal.reset ();
  Journal.disable ();
  Journal.emit ~cat:"jt.noop" "nothing" [];
  Alcotest.(check int) "no event recorded" 0 (List.length (mine "jt.noop"))

let test_emit_fields () =
  fresh ();
  Journal.emit ~severity:Journal.Warn ~step:7 ~time:1.5e-3 ~cat:"jt.fields"
    "evt"
    [
      ("f", Journal.F 2.5); ("i", Journal.I (-3)); ("s", Journal.S "a\"b");
      ("b", Journal.B true);
    ];
  (match mine "jt.fields" with
  | [ e ] ->
      Alcotest.(check string) "name" "evt" e.Journal.name;
      Alcotest.(check int) "step" 7 e.Journal.step;
      Alcotest.(check (float 0.0)) "time" 1.5e-3 e.Journal.time;
      Alcotest.(check bool) "severity" true (e.Journal.severity = Journal.Warn);
      let j = Journal.event_to_json e in
      let has s =
        let n = String.length s and m = String.length j in
        let rec go i = i + n <= m && (String.sub j i n = s || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "json has payload float" true (has "\"f\":2.5");
      Alcotest.(check bool) "json escapes strings" true (has "a\\\"b");
      Alcotest.(check bool) "json has step" true (has "\"step\":7")
  | es -> Alcotest.failf "expected 1 event, got %d" (List.length es));
  (* step and time are omitted from JSON when left at their defaults. *)
  Journal.emit ~cat:"jt.fields2" "bare" [];
  (match mine "jt.fields2" with
  | [ e ] ->
      let j = Journal.event_to_json e in
      let lacks s =
        let n = String.length s and m = String.length j in
        let rec go i = i + n > m || (String.sub j i n <> s && go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "no step key" true (lacks "\"step\"");
      Alcotest.(check bool) "no time key" true (lacks "\"time\"")
  | es -> Alcotest.failf "expected 1 event, got %d" (List.length es));
  teardown ()

let test_ring_overwrites_oldest () =
  fresh ();
  (* Capacity is fixed when a domain's buffer is first created, so the
     bounded behaviour is exercised in a fresh domain. *)
  let old_cap = Journal.capacity () in
  Journal.set_capacity 8;
  let dropped0 = Journal.dropped () in
  let d =
    Domain.spawn (fun () ->
        for i = 1 to 20 do
          Journal.emit ~cat:"jt.ring" "e" [ ("i", Journal.I i) ]
        done)
  in
  Domain.join d;
  Journal.set_capacity old_cap;
  let es = mine "jt.ring" in
  Alcotest.(check int) "capacity retained" 8 (List.length es);
  Alcotest.(check int) "losses accounted" 12 (Journal.dropped () - dropped0);
  (* Oldest overwritten: the survivors are exactly the last 8 emits. *)
  let is' =
    List.map
      (fun e ->
        match e.Journal.payload with
        | [ ("i", Journal.I i) ] -> i
        | _ -> Alcotest.fail "payload shape")
      es
  in
  Alcotest.(check (list int)) "last events retained" [ 13; 14; 15; 16; 17; 18; 19; 20 ] is';
  teardown ()

(* The tentpole concurrency contract, as a deterministic stress test:
   4 domains x 500 events, no losses, one total order, program order
   preserved per domain, merge stable across reads. *)
let test_concurrent_merge () =
  fresh ();
  let n_dom = 4 and per_dom = 500 in
  let dropped0 = Journal.dropped () in
  let doms =
    List.init n_dom (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_dom do
              Journal.emit ~cat:"jt.conc" "e"
                [ ("d", Journal.I d); ("i", Journal.I i) ]
            done))
  in
  List.iter Domain.join doms;
  let es = mine "jt.conc" in
  Alcotest.(check int) "no event lost" (n_dom * per_dom) (List.length es);
  Alcotest.(check int) "no drops" 0 (Journal.dropped () - dropped0);
  (* The merge key is (wall_ns, origin, seq): two domains can draw
     their seq before reading the clock, so cross-domain seq order may
     legitimately invert — but every event keeps its distinct seq. *)
  let seqs = List.map (fun e -> e.Journal.seq) es in
  Alcotest.(check int) "seqs all distinct" (List.length seqs)
    (List.length (List.sort_uniq Stdlib.compare seqs));
  (* Per-domain subsequences keep each domain's program order. *)
  let last = Array.make n_dom 0 in
  List.iter
    (fun e ->
      match e.Journal.payload with
      | [ ("d", Journal.I d); ("i", Journal.I i) ] ->
          Alcotest.(check bool) "program order preserved" true (i > last.(d));
          last.(d) <- i
      | _ -> Alcotest.fail "payload shape")
    es;
  Array.iteri
    (fun d n -> Alcotest.(check int) (Printf.sprintf "domain %d complete" d) per_dom n)
    last;
  (* Deterministic merge: a second read yields the same sequence. *)
  let seqs' = List.map (fun e -> e.Journal.seq) (mine "jt.conc") in
  Alcotest.(check (list int)) "merge is stable" seqs seqs';
  teardown ()

(* Randomised version of the same property: arbitrary per-domain event
   counts, same three invariants. *)
let prop_concurrent_counts =
  QCheck.Test.make ~count:25 ~name:"journal: concurrent emits merge losslessly"
    QCheck.(list_of_size (Gen.int_range 1 4) (int_range 0 50))
    (fun counts ->
      fresh ();
      let cat = "jt.prop" in
      let doms =
        List.mapi
          (fun d k ->
            Domain.spawn (fun () ->
                for i = 1 to k do
                  Journal.emit ~cat "e" [ ("d", Journal.I d); ("i", Journal.I i) ]
                done))
          counts
      in
      List.iter Domain.join doms;
      let es = mine cat in
      teardown ();
      let total = List.fold_left ( + ) 0 counts in
      let seqs = List.map (fun e -> e.Journal.seq) es in
      let seqs_distinct =
        List.length seqs = List.length (List.sort_uniq Stdlib.compare seqs)
      in
      let order_kept =
        let last = Array.make (List.length counts) 0 in
        List.for_all
          (fun e ->
            match e.Journal.payload with
            | [ ("d", Journal.I d); ("i", Journal.I i) ] ->
                let ok = i > last.(d) in
                last.(d) <- i;
                ok
            | _ -> false)
          es
      in
      List.length es = total && seqs_distinct && order_kept)

(* ---- cross-process telemetry ---- *)

let mk_event ~seq ~origin ~wall_ns ?(cat = "jt.xp") name =
  {
    Journal.seq;
    origin;
    dom = 0;
    cat;
    name;
    severity = Journal.Info;
    step = -1;
    time = nan;
    wall_ns;
    payload = [];
  }

let test_origin_tagging () =
  fresh ();
  Fun.protect
    ~finally:(fun () ->
      Journal.set_origin "";
      teardown ())
    (fun () ->
      Journal.set_origin "w3:1234";
      Journal.emit ~cat:"jt.origin" "tagged" [];
      (match mine "jt.origin" with
      | [ e ] ->
          Alcotest.(check string) "origin stamped" "w3:1234" e.Journal.origin;
          let j = Journal.event_to_json e in
          let has s =
            let n = String.length s and m = String.length j in
            let rec go i = i + n <= m && (String.sub j i n = s || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool) "json carries origin" true
            (has "\"origin\":\"w3:1234\"")
      | es -> Alcotest.failf "expected 1 event, got %d" (List.length es));
      Journal.set_origin "";
      Journal.emit ~cat:"jt.origin2" "anon" [];
      match mine "jt.origin2" with
      | [ e ] ->
          let j = Journal.event_to_json e in
          let lacks s =
            let n = String.length s and m = String.length j in
            let rec go i = i + n > m || (String.sub j i n <> s && go (i + 1)) in
            go 0
          in
          Alcotest.(check bool) "anonymous json omits origin" true
            (lacks "\"origin\"")
      | es -> Alcotest.failf "expected 1 event, got %d" (List.length es))

(* Satellite: merge determinism. Two worker streams sharing wall-clock
   timestamps (fork + a coarse clock make this real) must merge into
   the same byte sequence whichever stream the daemon happened to
   ingest first — the (origin, seq) tie-break, not arrival order,
   decides. *)
let test_merge_determinism_across_arrival_orders () =
  let stream_a =
    List.init 5 (fun i ->
        mk_event ~seq:(10 + i) ~origin:"w0:100" ~wall_ns:(1000 * (i / 2)) "a")
  in
  let stream_b =
    List.init 5 (fun i ->
        mk_event ~seq:(20 + i) ~origin:"w1:200" ~wall_ns:(1000 * (i / 2)) "b")
  in
  let merged order =
    fresh ();
    List.iter Journal.ingest order;
    let out = Journal.to_jsonl () in
    Journal.reset ();
    out
  in
  let ab = merged [ stream_a; stream_b ] in
  let ba = merged [ stream_b; stream_a ] in
  teardown ();
  Alcotest.(check string) "byte-identical merge" ab ba;
  Alcotest.(check bool) "merge nonempty" true (String.length ab > 0)

let test_events_after_drains_own_origin_only () =
  fresh ();
  Fun.protect
    ~finally:(fun () ->
      Journal.set_origin "";
      teardown ())
    (fun () ->
      Journal.set_origin "me:1";
      (* Inherited-from-parent or previously ingested foreign events
         must never be re-shipped, whatever their seq. *)
      Journal.ingest [ mk_event ~seq:max_int ~origin:"other:2" ~wall_ns:5 "x" ];
      let mark = Journal.next_seq () in
      Journal.emit ~cat:"jt.drain" "one" [];
      Journal.emit ~cat:"jt.drain" "two" [];
      let drained = Journal.events_after mark in
      Alcotest.(check int) "own events only" 2 (List.length drained);
      List.iter
        (fun e -> Alcotest.(check string) "origin" "me:1" e.Journal.origin)
        drained;
      Alcotest.(check bool) "seq order" true
        (strictly_increasing (List.map (fun e -> e.Journal.seq) drained));
      (* Advancing the watermark past the first event drains the rest. *)
      let rest = Journal.events_after (mark + 1) in
      Alcotest.(check int) "watermark advances" 1 (List.length rest);
      match rest with
      | [ e ] -> Alcotest.(check string) "newest survives" "two" e.Journal.name
      | _ -> Alcotest.fail "unreachable")

(* ---- incremental sink ---- *)

let read_lines path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | line -> go (line :: acc)
      | exception End_of_file ->
          close_in ic;
          List.rev acc
    in
    go []
  end

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let rm path = if Sys.file_exists path then Sys.remove path

let test_sink_incremental_flush () =
  let path = tmp "amsvp_journal_sink.jsonl" in
  rm path;
  fresh ();
  Journal.attach_sink path;
  Journal.emit ~cat:"jt.sink" "a" [];
  Journal.emit ~cat:"jt.sink" "b" [];
  Journal.flush ();
  let n1 = List.length (read_lines path) in
  Alcotest.(check bool) "first flush wrote" true (n1 >= 2);
  (* A second flush with nothing new appends nothing... *)
  Journal.flush ();
  Alcotest.(check int) "idempotent flush" n1 (List.length (read_lines path));
  (* ...and later events append without rewriting the prefix. *)
  Journal.emit ~cat:"jt.sink" "c" [];
  Journal.detach_sink ();
  Alcotest.(check int) "append only" (n1 + 1) (List.length (read_lines path));
  (* Detached: flush is a no-op again. *)
  Journal.emit ~cat:"jt.sink" "d" [];
  Journal.flush ();
  Alcotest.(check int) "detached" (n1 + 1) (List.length (read_lines path));
  rm path;
  teardown ()

let test_sink_rotation () =
  let path = tmp "amsvp_journal_rot.jsonl" in
  rm path;
  rm (path ^ ".1");
  rm (path ^ ".2");
  fresh ();
  (* Tiny limit: every flush of one event crosses it and rotates. *)
  Journal.attach_sink ~max_bytes:64 ~keep:2 path;
  for i = 1 to 4 do
    Journal.emit ~cat:"jt.rot" "e" [ ("i", Journal.I i) ];
    Journal.flush ()
  done;
  Alcotest.(check bool) "rotated once" true (Sys.file_exists (path ^ ".1"));
  Alcotest.(check bool) "rotated twice" true (Sys.file_exists (path ^ ".2"));
  Alcotest.(check bool) "keep bound respected" false
    (Sys.file_exists (path ^ ".3"));
  (* Nothing lost across the kept generations: every line everywhere is
     valid single-line JSON and the newest file holds the newest event. *)
  let all =
    read_lines (path ^ ".2") @ read_lines (path ^ ".1") @ read_lines path
  in
  Alcotest.(check bool) "kept recent events" true (List.length all >= 2);
  List.iter
    (fun l ->
      Alcotest.(check bool) "line is json" true
        (String.length l > 0 && l.[0] = '{'))
    all;
  Journal.detach_sink ();
  rm path;
  rm (path ^ ".1");
  rm (path ^ ".2");
  teardown ()

(* Worker seq counters restart per process, so a freshly ingested
   foreign event whose seq is far below the daemon's own must still
   reach the sink: flush watermarks are per origin. *)
let test_sink_per_origin_watermark () =
  let path = tmp "amsvp_journal_origins.jsonl" in
  rm path;
  fresh ();
  Journal.attach_sink path;
  Journal.emit ~cat:"jt.ow" "local" [];
  Journal.flush ();
  let n1 = List.length (read_lines path) in
  Journal.ingest [ mk_event ~seq:0 ~origin:"w0:50" ~wall_ns:1 "foreign" ];
  Journal.flush ();
  Alcotest.(check int) "low-seq foreign event flushed" (n1 + 1)
    (List.length (read_lines path));
  Journal.flush ();
  Alcotest.(check int) "foreign watermark sticks" (n1 + 1)
    (List.length (read_lines path));
  Journal.ingest [ mk_event ~seq:1 ~origin:"w0:50" ~wall_ns:2 "foreign2" ];
  Journal.detach_sink ();
  Alcotest.(check int) "subsequent foreign event flushed" (n1 + 2)
    (List.length (read_lines path));
  rm path;
  teardown ()

let () =
  Alcotest.run "journal"
    [
      ( "basics",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
          Alcotest.test_case "emit fields and json" `Quick test_emit_fields;
          Alcotest.test_case "ring overwrites oldest" `Quick
            test_ring_overwrites_oldest;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "4-domain merge" `Quick test_concurrent_merge;
          QCheck_alcotest.to_alcotest prop_concurrent_counts;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "origin tagging" `Quick test_origin_tagging;
          Alcotest.test_case "merge deterministic across arrival orders"
            `Quick test_merge_determinism_across_arrival_orders;
          Alcotest.test_case "events_after drains own origin only" `Quick
            test_events_after_drains_own_origin_only;
        ] );
      ( "sink",
        [
          Alcotest.test_case "incremental flush" `Quick
            test_sink_incremental_flush;
          Alcotest.test_case "size-based rotation" `Quick test_sink_rotation;
          Alcotest.test_case "per-origin flush watermarks" `Quick
            test_sink_per_origin_watermark;
        ] );
    ]
