(* Tests for the static analyzer: golden diagnostics per code, the
   acceptance scenario (three distinct codes, each with a correct
   source location, in text and JSON), the Flow pre-flight gates, and
   the lint/abstract consistency property. *)

module Diag = Amsvp_diag.Diag
module Lint = Amsvp_analysis.Lint
module Circuit = Amsvp_netlist.Circuit
module Component = Amsvp_netlist.Component
module Flow = Amsvp_core.Flow
module Spec = Amsvp_sweep.Spec

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let lint ?lang ?inputs ?dt src = Lint.lint ?lang ?inputs ?dt ~file:"m.vams" src

let codes fs = List.sort_uniq compare (List.map (fun f -> f.Diag.code) fs)

let has code fs = List.exists (fun f -> f.Diag.code = code) fs

let check_has src code =
  let fs = lint src in
  if not (has code fs) then
    Alcotest.failf "expected %s, got: %s" code (String.concat "," (codes fs))

(* Golden fixtures: each seeded defect reports its code. *)

let test_frontend_codes () =
  check_has "module m(); analog I(a,gnd) <+ 1.0 @ 2.0; endmodule" "AMS001";
  check_has "module ;" "AMS002";
  check_has "" "AMS003";
  (* an instance of an unknown module is an elaboration error *)
  check_has
    "module m(); electrical a;\n  nosuch u1 (.p(a), .n(gnd));\nendmodule"
    "AMS003"

let test_ast_codes () =
  check_has "module m(); analog I(x,gnd) <+ 1.0e-3; endmodule" "AMS010";
  check_has
    "module m(); electrical a; parameter real unused = 1;\n\
     analog I(a,gnd) <+ 1.0e-3 * V(a,gnd); endmodule"
    "AMS011";
  check_has
    "module m(in); input electrical in;\nanalog V(in,gnd) <+ 1.0; endmodule"
    "AMS012";
  check_has
    "module m(); electrical a;\n\
     analog begin\n\
    \  I(a,gnd) <+ 1.0e-3 * V(a,gnd);\n\
    \  I(a,gnd) <+ 2.0e-3 * V(a,gnd);\n\
     end\n\
     endmodule"
    "AMS013";
  check_has
    "module m(); electrical a, b;\n\
     analog begin\n\
    \  I(b,gnd) <+ 1.0e-3 * V(b,gnd);\n\
    \  V(a,gnd) <+ 2.0 * V(a,gnd) + V(b,gnd);\n\
     end\n\
     endmodule"
    "AMS014";
  check_has
    "module m(); electrical a;\n\
     analog I(a,gnd) <+ ddt(ddt(V(a,gnd)));\nendmodule"
    "AMS015";
  check_has
    "module m(); electrical a; parameter real d = 0;\n\
     analog I(a,gnd) <+ V(a,gnd) / d;\nendmodule"
    "AMS016"

let test_clean_models_lint_clean () =
  let check_clean label fs =
    Alcotest.(check (list string)) label [] (codes fs)
  in
  check_clean "rc ladder" (lint (Amsvp_vams.Sources.rc_ladder 3));
  check_clean "signal flow" (lint Amsvp_vams.Sources.signal_flow_filter);
  check_clean "two-input" (lint Amsvp_vams.Sources.two_input);
  check_clean "vhdl rc"
    (lint ~lang:`Vhdl_ams ~inputs:[ "tin" ]
       (Amsvp_vhdlams.Vsources.rc_ladder 2))

let test_signal_flow_codes () =
  (* reading a never-assigned quantity *)
  check_has
    "module m(in, out); input electrical in; output electrical out;\n\
     analog V(out) <+ V(in) + V(ghost);\nendmodule"
    "AMS030";
  (* zero-delay ordering violation: x is read before its assignment *)
  check_has
    "module m(in, out); input electrical in; output electrical out;\n\
     electrical x;\n\
     analog begin\n\
    \  V(out) <+ 2.0 * V(x);\n\
    \  V(x) <+ V(in);\n\
     end\n\
     endmodule"
    "AMS040";
  (* nonlinear self-reference is outside the linear direct conversion *)
  check_has
    "module m(in, out); input electrical in; output electrical out;\n\
     analog V(out) <+ V(in) - V(out) * V(out);\nendmodule"
    "AMS042"

let test_stability_warning () =
  (* tau = rc = 125us; dt = 1s is far beyond it *)
  let src =
    "module m(in, out); input electrical in; output electrical out;\n\
     analog begin\n\
    \  I(in,out) <+ V(in,out) / 5.0e3;\n\
    \  I(out,gnd) <+ 25.0e-9 * ddt(V(out,gnd));\n\
     end\n\
     endmodule"
  in
  let fs = lint ~dt:1.0 src in
  Alcotest.(check bool) "AMS041 at large dt" true (has "AMS041" fs);
  let fs = lint ~dt:1.0e-6 src in
  Alcotest.(check bool) "quiet at small dt" false (has "AMS041" fs)

(* Full-text golden baselines: every fixture under [fixtures/] is
   linted and its complete [Diag.report_to_text] report — codes,
   severities, positions, messages and the summary line — is diffed
   against the checked-in [.golden] file, so any drift in wording or
   location shows up as a test failure with both texts printed.

   To regenerate after an intentional change:

     AMSVP_GOLDEN_REGEN=1 dune exec test/test_analysis.exe -- test baselines
     cp _build/default/test/fixtures/*.golden test/fixtures/
*)

(* [(base, amplitude_budget)] — the budget feeds the AMS063 pass for
   the fixtures that exercise it. *)
let golden_fixtures =
  [
    ("lint_showcase", None);
    ("lint_unused", None);
    ("lint_ordering", None);
    ("absint_div0", None);
    ("absint_nonfinite", None);
    ("absint_const", None);
    ("absint_amplitude", Some 5.0);
  ]

(* [dune runtest] runs from the test directory, [dune exec] from the
   project root: resolve fixtures next to the executable, where dune
   placed the (deps) copies either way. *)
let fixture_dir =
  Filename.concat (Filename.dirname Sys.executable_name) "fixtures"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_golden_baselines () =
  let regen = Sys.getenv_opt "AMSVP_GOLDEN_REGEN" = Some "1" in
  List.iter
    (fun (base, amplitude_budget) ->
      let vams = Filename.concat fixture_dir (base ^ ".vams") in
      let golden = Filename.concat fixture_dir (base ^ ".golden") in
      let report =
        Diag.report_to_text
          (Lint.lint ?amplitude_budget
             ~file:("fixtures/" ^ base ^ ".vams")
             (read_file vams))
        ^ "\n"
      in
      if regen then begin
        (* The previous golden arrives as a read-only copy of the
           source file; unlink it before writing the fresh one. *)
        (try Sys.remove golden with Sys_error _ -> ());
        let oc = open_out_bin golden in
        output_string oc report;
        close_out oc
      end
      else if not (Sys.file_exists golden) then
        Alcotest.failf "%s missing — run with AMSVP_GOLDEN_REGEN=1" golden
      else
        let expected = read_file golden in
        if not (String.equal expected report) then
          Alcotest.failf
            "%s drifted from its baseline.\n--- expected\n%s--- got\n%s"
            vams expected report)
    golden_fixtures

(* The acceptance scenario: one model with a floating island, an
   under-determined sensed net and a zero-default divisor reports three
   distinct codes, each anchored at the right source position. *)

let showcase =
  {|module helper(a, b);
  inout electrical a, b;
  parameter real div0 = 0;
  analog begin
    I(a,b) <+ V(a,b) / div0;
  end
endmodule

module showcase(in, out);
  input electrical in;
  output electrical out;
  electrical s;
  electrical f1, f2;
  analog begin
    V(out,gnd) <+ 2.0 * V(s,gnd);
    I(f1,f2) <+ 1.0e-3 * V(f1,f2);
  end
endmodule|}

let find code fs =
  match List.find_opt (fun f -> f.Diag.code = code) fs with
  | Some f -> f
  | None -> Alcotest.failf "missing %s" code

let test_acceptance_scenario () =
  let fs = Diag.apply Diag.default_config (lint showcase) in
  let at code line col =
    let f = find code fs in
    match f.Diag.span with
    | None -> Alcotest.failf "%s has no span" code
    | Some sp ->
        Alcotest.(check (pair int int))
          (code ^ " position") (line, col)
          (sp.Diag.line, sp.Diag.col)
  in
  (* the divisor itself; the sensing contribution; the island's one *)
  at "AMS016" 5 24;
  at "AMS030" 15 5;
  at "AMS020" 16 5;
  let text = Diag.report_to_text fs in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("text has " ^ needle) true
        (contains_substring text needle))
    [
      "m.vams:5:24: error[AMS016]";
      "m.vams:15:5: error[AMS030]";
      "m.vams:16:5: error[AMS020]";
      "V(s,gnd)";
    ];
  let json = Diag.report_to_json ~file:"m.vams" fs in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("json has " ^ needle) true
        (contains_substring json needle))
    [
      {|"code": "AMS016"|};
      {|"code": "AMS030"|};
      {|"code": "AMS020"|};
      {|"line": 15|};
      {|"subject": "V(s,gnd)"|};
    ]

let test_werror_and_suppression () =
  let fs = lint showcase in
  let upgraded = Diag.apply { Diag.werror = true; suppress = [] } fs in
  Alcotest.(check bool) "werror leaves no warnings" false
    (List.exists (fun f -> f.Diag.severity = Diag.Warning) upgraded);
  let muted = Diag.apply { Diag.werror = false; suppress = [ "AMS020" ] } fs in
  Alcotest.(check bool) "AMS020 suppressed" false (has "AMS020" muted);
  Alcotest.(check bool) "others kept" true (has "AMS030" muted)

(* Flow pre-flight gates: the same codes, raised as [Diag.Rejected]
   instead of a deep solver exception. *)

let rejected_code f =
  try
    ignore (f ());
    Alcotest.fail "expected Diag.Rejected"
  with Diag.Rejected finding -> finding.Diag.code

let test_flow_gate_topology () =
  let c = Circuit.create () in
  Circuit.add_vsource c ~name:"v1" ~pos:"a" ~neg:"gnd" (Component.Dc 1.0);
  Circuit.add_vsource c ~name:"v2" ~pos:"a" ~neg:"gnd" (Component.Dc 2.0);
  Alcotest.(check string) "voltage-source loop" "AMS022"
    (rejected_code (fun () ->
         Flow.abstract_circuit c
           ~outputs:[ Expr.potential "a" "gnd" ]
           ~dt:50e-9))

let test_flow_gate_solvability () =
  (* a VCVS sensing a net no equation ever solves *)
  let c = Circuit.create () in
  Circuit.add_vsource c ~name:"v1" ~pos:"in" ~neg:"gnd" (Component.Dc 1.0);
  Circuit.add_vcvs c ~name:"e1" ~pos:"out" ~neg:"gnd" ~gain:2.0 ~ctrl_pos:"s"
    ~ctrl_neg:"gnd";
  Circuit.add_resistor c ~name:"rl" ~pos:"out" ~neg:"gnd" 1.0e3;
  let finding =
    try
      ignore
        (Flow.abstract_circuit c
           ~outputs:[ Expr.potential "out" "gnd" ]
           ~dt:50e-9);
      Alcotest.fail "expected Diag.Rejected"
    with Diag.Rejected f -> f
  in
  Alcotest.(check string) "under-determined" "AMS030" finding.Diag.code;
  (* which member of the deficient block ends unmatched is
     order-dependent; the class of the message is what is stable *)
  Alcotest.(check bool) "says under-determined" true
    (contains_substring finding.Diag.message "under-determined")

(* Sweep spec diagnosis *)

let test_spec_diagnose () =
  Alcotest.(check (list string)) "empty spec" [ "AMS050" ]
    (codes (Spec.diagnose Spec.default));
  let axis param range = { Spec.param; range } in
  let s =
    {
      Spec.default with
      Spec.axes =
        [
          axis "r1.r" (Spec.Grid { lo = 1.0; hi = 2.0; n = 3 });
          axis "r1.r" (Spec.Values [ 1.0 ]);
          axis "c1.c" (Spec.Grid { lo = 5.0; hi = 1.0; n = 2 });
        ];
      corners = [ { Spec.corner_name = "empty"; binds = [] } ];
    }
  in
  let fs = Spec.diagnose s in
  Alcotest.(check (list string)) "all defects" [ "AMS051"; "AMS052" ]
    (codes fs);
  Alcotest.(check bool) "validate mirrors diagnose" true
    (match Spec.validate s with Error _ -> true | Ok () -> false);
  Alcotest.(check bool) "good spec passes" true
    (Spec.diagnose
       { Spec.default with Spec.axes = [ axis "r1.r" (Spec.Values [ 1.0 ]) ] }
     = [])

(* Property: a random circuit that lints clean at error level abstracts
   without raising — the gates and the deep flow agree on what is
   malformed. *)

let circuit_of_plan plan =
  let c = Circuit.create () in
  let node = function 0 -> "gnd" | i -> Printf.sprintf "n%d" i in
  List.iteri
    (fun i (kind, a, b) ->
      let a = node a and b = node (if a = b then (b + 1) mod 4 else b) in
      if a <> b then
        let name = Printf.sprintf "d%d" i in
        match kind mod 3 with
        | 0 -> Circuit.add_resistor c ~name ~pos:a ~neg:b 1.0e3
        | 1 -> Circuit.add_capacitor c ~name ~pos:a ~neg:b 1.0e-9
        | _ -> Circuit.add_vsource c ~name ~pos:a ~neg:b (Component.Dc 1.0))
    plan;
  c

let lint_clean_abstracts =
  QCheck.Test.make ~name:"lint-clean circuits abstract without raising"
    ~count:200
    QCheck.(
      small_list (triple (int_range 0 2) (int_range 0 3) (int_range 0 3)))
    (fun plan ->
      let circuit = circuit_of_plan plan in
      match Circuit.devices circuit with
      | [] -> true
      | d0 :: _ -> (
          let outputs = [ Expr.potential d0.Component.pos d0.Component.neg ] in
          (* Every failure mode must surface as a located Diag
             rejection, never as a raw solver exception. *)
          try
            Flow.(ignore (abstract_circuit circuit ~outputs ~dt:50e-9));
            true
          with
          | Diag.Rejected _ -> true
          | e ->
              QCheck.Test.fail_reportf
                "abstract raised %s instead of a Diag gate"
                (Printexc.to_string e)))

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "analysis"
    [
      ( "golden",
        [
          Alcotest.test_case "front-end codes" `Quick test_frontend_codes;
          Alcotest.test_case "ast codes" `Quick test_ast_codes;
          Alcotest.test_case "clean models" `Quick test_clean_models_lint_clean;
          Alcotest.test_case "signal-flow codes" `Quick test_signal_flow_codes;
          Alcotest.test_case "stability warning" `Quick test_stability_warning;
        ] );
      ( "baselines",
        [ Alcotest.test_case "fixture reports" `Quick test_golden_baselines ]
      );
      ( "acceptance",
        [
          Alcotest.test_case "three codes with spans" `Quick
            test_acceptance_scenario;
          Alcotest.test_case "werror and suppression" `Quick
            test_werror_and_suppression;
        ] );
      ( "gates",
        [
          Alcotest.test_case "topology gate" `Quick test_flow_gate_topology;
          Alcotest.test_case "solvability gate" `Quick
            test_flow_gate_solvability;
        ] );
      ( "sweep-spec",
        [ Alcotest.test_case "diagnose" `Quick test_spec_diagnose ] );
      ("property", qt [ lint_clean_abstracts ]);
    ]
