(* Tests for signal-flow programs and their tight-loop runner. *)

module Sfprogram = Amsvp_sf.Sfprogram
module Trace = Amsvp_util.Trace
module Stimulus = Amsvp_util.Stimulus

let y = Expr.potential "y" "gnd"
let z = Expr.signal "z"
let input = Expr.signal "u"

let mk ?(inputs = [ "u" ]) ?(outputs = [ y ]) assignments =
  Sfprogram.make ~name:"t" ~inputs ~outputs ~assignments ~dt:1.0

let asg target expr = { Sfprogram.target; expr }

(* Validation *)

let expect_invalid name f =
  Alcotest.(check bool) name true
    (try
       ignore (f ());
       false
     with Invalid_argument _ -> true)

let test_duplicate_target () =
  expect_invalid "duplicate target" (fun () ->
      mk [ asg y (Expr.var input); asg y Expr.zero ])

let test_unassigned_output () =
  expect_invalid "unassigned output" (fun () -> mk [ asg z (Expr.var input) ])

let test_forward_reference () =
  expect_invalid "forward read" (fun () ->
      mk ~outputs:[ y ] [ asg y (Expr.var z); asg z (Expr.var input) ])

let test_unknown_history () =
  expect_invalid "history of unknown quantity" (fun () ->
      mk [ asg y (Expr.var (Expr.delayed (Expr.signal "ghost") 1)) ])

let test_parameter_rejected () =
  expect_invalid "unresolved parameter" (fun () ->
      mk [ asg y (Expr.var (Expr.param "R")) ])

let test_ddt_rejected () =
  expect_invalid "ddt leak" (fun () -> mk [ asg y (Expr.Ddt (Expr.var input)) ])

let test_assignment_to_delayed () =
  expect_invalid "delayed target" (fun () ->
      mk [ asg (Expr.delayed y 1) (Expr.var input) ])

(* Structure *)

let test_state_and_delay () =
  let p =
    mk
      [
        asg z Expr.(var (Expr.delayed z 1) + var input);
        asg y Expr.(var z + var (Expr.delayed z 2));
      ]
  in
  Alcotest.(check int) "max delay" 2 (Sfprogram.max_delay p);
  let states = Sfprogram.state_vars p in
  Alcotest.(check int) "one state-bearing target" 1 (List.length states);
  Alcotest.(check string) "state is z" "z" (Expr.var_name (List.hd states))

let test_combinational_no_state () =
  (* Purely combinational: no history anywhere. *)
  let p = mk [ asg z Expr.(scale 2.0 (var input)); asg y (Expr.var z) ] in
  Alcotest.(check int) "max delay" 0 (Sfprogram.max_delay p);
  Alcotest.(check int) "no state vars" 0 (List.length (Sfprogram.state_vars p))

let test_transitive_delay_reference () =
  (* Only y's assignment references history, and of the *input*: the
     delay still counts towards max_delay, but state_vars lists only
     assigned targets — input histories are tracked separately by the
     runner, so they must not show up here. *)
  let p = mk [ asg y (Expr.var (Expr.delayed input 1)) ] in
  Alcotest.(check int) "max delay" 1 (Sfprogram.max_delay p);
  Alcotest.(check int) "input history is not a state var" 0
    (List.length (Sfprogram.state_vars p))

let test_output_is_state_var () =
  (* The output itself is delayed-referenced: it must appear in
     state_vars exactly once even though it is also an output. *)
  let p = mk [ asg y Expr.(var (Expr.delayed y 1) + var input) ] in
  Alcotest.(check int) "max delay" 1 (Sfprogram.max_delay p);
  let states = Sfprogram.state_vars p in
  Alcotest.(check int) "one state var" 1 (List.length states);
  Alcotest.(check string) "output doubles as state" "V(y,gnd)"
    (Expr.var_name (List.hd states))

(* Runner semantics *)

let test_accumulator () =
  let p = mk ~outputs:[ z ] [ asg z Expr.(var (Expr.delayed z 1) + var input) ] in
  let r = Sfprogram.Runner.create p in
  Sfprogram.Runner.reset r;
  Sfprogram.Runner.step r ~inputs:[| 2.0 |];
  Sfprogram.Runner.step r ~inputs:[| 3.0 |];
  Sfprogram.Runner.step r ~inputs:[| 4.0 |];
  Alcotest.(check (float 0.0)) "sum" 9.0 (Sfprogram.Runner.output r 0)

let test_two_level_history () =
  (* y_t = u_{t-2}: a two-step delay line on the input. *)
  let p = mk [ asg y (Expr.var (Expr.delayed input 2)) ] in
  let r = Sfprogram.Runner.create p in
  let feed v = Sfprogram.Runner.step r ~inputs:[| v |] in
  feed 1.0;
  feed 2.0;
  Alcotest.(check (float 0.0)) "initially zero-padded" 0.0
    (Sfprogram.Runner.output r 0);
  feed 3.0;
  Alcotest.(check (float 0.0)) "sees first input" 1.0
    (Sfprogram.Runner.output r 0);
  feed 4.0;
  Alcotest.(check (float 0.0)) "sees second input" 2.0
    (Sfprogram.Runner.output r 0)

let test_same_step_chaining () =
  (* z computed first, y reads it in the same step. *)
  let p =
    mk
      [
        asg z Expr.(scale 2.0 (var input));
        asg y Expr.(var z + Expr.const 1.0);
      ]
  in
  let r = Sfprogram.Runner.create p in
  Sfprogram.Runner.step r ~inputs:[| 5.0 |];
  Alcotest.(check (float 0.0)) "chained" 11.0 (Sfprogram.Runner.output r 0)

let test_reset_clears_state () =
  let p = mk ~outputs:[ z ] [ asg z Expr.(var (Expr.delayed z 1) + var input) ] in
  let r = Sfprogram.Runner.create p in
  Sfprogram.Runner.step r ~inputs:[| 7.0 |];
  Sfprogram.Runner.reset r;
  Sfprogram.Runner.step r ~inputs:[| 1.0 |];
  Alcotest.(check (float 0.0)) "state cleared" 1.0 (Sfprogram.Runner.output r 0)

let test_input_arity_checked () =
  let p = mk [ asg y (Expr.var input) ] in
  let r = Sfprogram.Runner.create p in
  expect_invalid "arity mismatch" (fun () -> Sfprogram.Runner.step r ~inputs:[||])

let test_input_arity_message () =
  (* The error names the program and both arities, so a mis-wired
     stimulus table is diagnosable without a debugger. *)
  let p = mk [ asg y (Expr.var input) ] in
  let r = Sfprogram.Runner.create p in
  match Sfprogram.Runner.step r ~inputs:[| 1.0; 2.0 |] with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
      Alcotest.(check string) "names program and arities"
        "Sfprogram.Runner.step(t): expected 1 input(s), got 2" msg

let test_read_by_name () =
  let p =
    mk [ asg z Expr.(scale 3.0 (var input)); asg y Expr.(var z - Expr.one) ]
  in
  let r = Sfprogram.Runner.create p in
  Sfprogram.Runner.step r ~inputs:[| 2.0 |];
  Alcotest.(check (float 0.0)) "read z" 6.0 (Sfprogram.Runner.read r z);
  Alcotest.(check (float 0.0)) "read y" 5.0 (Sfprogram.Runner.read r y)

let test_run_records_trace () =
  let p = mk [ asg y (Expr.var input) ] in
  let r = Sfprogram.Runner.create p in
  let tr = Sfprogram.Runner.run r ~stimuli:[| (fun t -> t) |] ~t_stop:5.0 () in
  Alcotest.(check int) "samples" 6 (Trace.length tr);
  Alcotest.(check (float 1e-12)) "identity at t=3" 3.0 (Trace.sample_at tr 3.0)

(* Serialisation *)

module Serialize = Amsvp_sf.Serialize
module Circuits = Amsvp_netlist.Circuits
module Flow = Amsvp_core.Flow
module Metrics = Amsvp_util.Metrics

let roundtrip_equal_traces p stimuli t_stop =
  let text = Serialize.program_to_string p in
  let p' = Serialize.program_of_string text in
  let run prog =
    let r = Sfprogram.Runner.create prog in
    Sfprogram.Runner.run r ~stimuli ~t_stop ()
  in
  let a = run p and b = run p' in
  Alcotest.(check int) "same sample count" (Trace.length a) (Trace.length b);
  for i = 0 to Trace.length a - 1 do
    let va = Trace.value a i and vb = Trace.value b i in
    if not (va = vb || abs_float (va -. vb) <= 1e-15 *. abs_float va) then
      Alcotest.failf "sample %d differs: %.17g vs %.17g" i va vb
  done

let test_serialize_rc_program () =
  let tc = Circuits.rc_ladder 2 in
  let p = (Flow.abstract_testcase tc ~dt:1e-6).Flow.program in
  roundtrip_equal_traces p
    [| Stimulus.square ~period:1e-3 ~low:0.0 ~high:1.0 |]
    2e-3

let test_serialize_pwl_program () =
  (* Conditions and ternaries must survive the round-trip. *)
  let ckt = Amsvp_netlist.Circuit.create () in
  Amsvp_netlist.Circuit.add_vsource ckt ~name:"vin" ~pos:"in" ~neg:"gnd"
    (Amsvp_netlist.Component.Input "in");
  Amsvp_netlist.Circuit.add_resistor ckt ~name:"r1" ~pos:"in" ~neg:"a" 1.0e3;
  Amsvp_netlist.Circuit.add_pwl_conductance ckt ~name:"d1" ~pos:"a" ~neg:"gnd"
    ~g_on:0.01 ~g_off:1e-9 ~threshold:0.0;
  let p =
    (Flow.abstract_circuit ckt ~outputs:[ Expr.potential "a" "gnd" ] ~dt:1e-6)
      .Flow.program
  in
  roundtrip_equal_traces p
    [| Stimulus.sine ~freq:1e3 ~amplitude:1.0 () |]
    2e-3

let test_serialize_header_roundtrip () =
  let p = mk ~outputs:[ y ] [ asg y (Expr.var input) ] in
  let p' = Serialize.program_of_string (Serialize.program_to_string p) in
  Alcotest.(check string) "name" p.Sfprogram.name p'.Sfprogram.name;
  Alcotest.(check (float 0.0)) "dt" p.Sfprogram.dt p'.Sfprogram.dt;
  Alcotest.(check (list string)) "inputs" p.Sfprogram.inputs p'.Sfprogram.inputs;
  Alcotest.(check int) "outputs" 1 (List.length p'.Sfprogram.outputs)

let test_serialize_errors () =
  let expect name text =
    Alcotest.(check bool) name true
      (try
         ignore (Serialize.program_of_string text);
         false
       with Serialize.Parse_error _ -> true)
  in
  expect "missing header" "assign x := 1";
  expect "bad version" "sfprogram 9\nname t\ndt 1\ninputs\noutputs x\n";
  expect "bad expression"
    "sfprogram 1\nname t\ndt 1\ninputs u\noutputs x\nassign x := 1 +\n";
  expect "unknown directive"
    "sfprogram 1\nname t\ndt 1\nfrobnicate\n"

(* Properties *)

let prop_linear_program_superposition =
  (* For a program with linear assignments, scaling the input scales the
     output (zero initial state). *)
  QCheck.Test.make ~name:"linear programs scale with their input" ~count:50
    QCheck.(pair (float_range 0.1 10.0) (int_range 1 40))
    (fun (k, steps) ->
      let p =
        mk ~outputs:[ z ]
          [ asg z Expr.(scale 0.5 (var (Expr.delayed z 1)) + var input) ]
      in
      let run scale =
        let r = Sfprogram.Runner.create p in
        Sfprogram.Runner.reset r;
        for i = 1 to steps do
          Sfprogram.Runner.step r ~inputs:[| scale *. float_of_int i |]
        done;
        Sfprogram.Runner.output r 0
      in
      let a = run 1.0 and b = run k in
      abs_float (b -. (k *. a)) <= 1e-9 *. (1.0 +. abs_float b))

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "signalflow"
    [
      ( "validation",
        [
          Alcotest.test_case "duplicate target" `Quick test_duplicate_target;
          Alcotest.test_case "unassigned output" `Quick test_unassigned_output;
          Alcotest.test_case "forward reference" `Quick test_forward_reference;
          Alcotest.test_case "unknown history" `Quick test_unknown_history;
          Alcotest.test_case "parameter rejected" `Quick test_parameter_rejected;
          Alcotest.test_case "ddt rejected" `Quick test_ddt_rejected;
          Alcotest.test_case "delayed target rejected" `Quick
            test_assignment_to_delayed;
        ] );
      ( "structure",
        [
          Alcotest.test_case "state and delay" `Quick test_state_and_delay;
          Alcotest.test_case "combinational" `Quick test_combinational_no_state;
          Alcotest.test_case "transitive delay" `Quick
            test_transitive_delay_reference;
          Alcotest.test_case "output doubles as state" `Quick
            test_output_is_state_var;
        ] );
      ( "runner",
        [
          Alcotest.test_case "accumulator" `Quick test_accumulator;
          Alcotest.test_case "two-level history" `Quick test_two_level_history;
          Alcotest.test_case "same-step chaining" `Quick test_same_step_chaining;
          Alcotest.test_case "reset" `Quick test_reset_clears_state;
          Alcotest.test_case "input arity" `Quick test_input_arity_checked;
          Alcotest.test_case "input arity message" `Quick
            test_input_arity_message;
          Alcotest.test_case "read by variable" `Quick test_read_by_name;
          Alcotest.test_case "trace recording" `Quick test_run_records_trace;
        ] );
      ( "serialize",
        [
          Alcotest.test_case "RC program round-trip" `Quick
            test_serialize_rc_program;
          Alcotest.test_case "PWL program round-trip" `Quick
            test_serialize_pwl_program;
          Alcotest.test_case "header round-trip" `Quick
            test_serialize_header_roundtrip;
          Alcotest.test_case "errors" `Quick test_serialize_errors;
        ] );
      ("properties", qt [ prop_linear_program_superposition ]);
    ]
