(* Tests for the linear algebra and the conservative transient engines. *)

module Matrix = Amsvp_mna.Matrix
module System = Amsvp_mna.System
module Engine = Amsvp_mna.Engine
module Circuit = Amsvp_netlist.Circuit
module Component = Amsvp_netlist.Component
module Circuits = Amsvp_netlist.Circuits
module Graph = Amsvp_netlist.Graph
module Trace = Amsvp_util.Trace
module Stimulus = Amsvp_util.Stimulus

let checkf tol = Alcotest.(check (float tol))

(* Linear algebra *)

let test_lu_solve_known_system () =
  let m = Matrix.create 3 in
  let rows = [| [| 2.0; 1.0; -1.0 |]; [| -3.0; -1.0; 2.0 |]; [| -2.0; 1.0; 2.0 |] |] in
  Array.iteri (fun i r -> Array.iteri (fun j v -> Matrix.set m i j v) r) rows;
  let x = Matrix.solve m [| 8.0; -11.0; -3.0 |] in
  checkf 1e-9 "x0" 2.0 x.(0);
  checkf 1e-9 "x1" 3.0 x.(1);
  checkf 1e-9 "x2" (-1.0) x.(2)

let test_lu_pivoting () =
  (* Zero on the diagonal forces a row swap. *)
  let m = Matrix.create 2 in
  Matrix.set m 0 0 0.0;
  Matrix.set m 0 1 1.0;
  Matrix.set m 1 0 1.0;
  Matrix.set m 1 1 0.0;
  let x = Matrix.solve m [| 3.0; 4.0 |] in
  checkf 1e-12 "x0" 4.0 x.(0);
  checkf 1e-12 "x1" 3.0 x.(1)

let test_singular_detected () =
  let m = Matrix.create 2 in
  Matrix.set m 0 0 1.0;
  Matrix.set m 0 1 2.0;
  Matrix.set m 1 0 2.0;
  Matrix.set m 1 1 4.0;
  Alcotest.check_raises "singular" (Matrix.Singular 1) (fun () ->
      ignore (Matrix.lu_factor m))

let prop_lu_roundtrip =
  (* Solve then multiply back: A x = b. *)
  QCheck.Test.make ~name:"LU solve satisfies A x = b" ~count:100
    QCheck.(list_of_size (Gen.return 9) (float_range (-10.0) 10.0))
    (fun entries ->
      let m = Matrix.create 3 in
      List.iteri (fun k v -> Matrix.set m (k / 3) (k mod 3) v) entries;
      (* Diagonal dominance keeps the system comfortably regular. *)
      for i = 0 to 2 do
        Matrix.add_to m i i 50.0
      done;
      let b = [| 1.0; -2.0; 3.0 |] in
      let x = Matrix.solve m b in
      let back = Matrix.mat_vec m x in
      Array.for_all2 (fun u w -> abs_float (u -. w) < 1e-8) back b)

(* DC behaviour *)

let dc_testcase label circuit output =
  { Circuits.label; circuit; output; stimuli = [] }

let test_voltage_divider () =
  let c = Circuit.create () in
  Circuit.add_vsource c ~name:"vs" ~pos:"a" ~neg:"gnd" (Component.Dc 10.0);
  Circuit.add_resistor c ~name:"r1" ~pos:"a" ~neg:"mid" 1.0e3;
  Circuit.add_resistor c ~name:"r2" ~pos:"mid" ~neg:"gnd" 3.0e3;
  let tc = dc_testcase "divider" c (Expr.potential "mid" "gnd") in
  let r = Engine.run_testcase_eln tc ~dt:1e-6 ~t_stop:1e-5 in
  checkf 1e-9 "3/4 of 10V" 7.5 (Trace.last_value r.trace)

let test_vsource_loop_singular () =
  let c = Circuit.create () in
  Circuit.add_vsource c ~name:"v1" ~pos:"a" ~neg:"gnd" (Component.Dc 1.0);
  Circuit.add_vsource c ~name:"v2" ~pos:"a" ~neg:"gnd" (Component.Dc 2.0);
  let tc = dc_testcase "conflict" c (Expr.potential "a" "gnd") in
  Alcotest.(check bool) "rejected as singular" true
    (try
       ignore (Engine.run_testcase_eln tc ~dt:1e-6 ~t_stop:1e-5);
       false
     with
    | Matrix.Singular _ -> true
    (* topology validation now rejects the voltage-source loop before
       the matrix is ever assembled *)
    | Invalid_argument msg ->
        let sub = "voltage-defined" in
        let n = String.length msg and m = String.length sub in
        let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
        go 0)

let run_dc (tc : Circuits.testcase) ~dc_inputs ~t_stop =
  let stimuli = List.map (fun (n, v) -> (n, Stimulus.constant v)) dc_inputs in
  Engine.eln_like tc.circuit ~inputs:stimuli ~output:tc.output ~dt:(t_stop /. 2000.0)
    ~t_stop

let test_two_input_dc_gain () =
  let tc = Circuits.two_input () in
  let r = run_dc tc ~dc_inputs:[ ("in1", 1.0); ("in2", 1.0) ] ~t_stop:1e-3 in
  (* Ideal summing amplifier: -(R3/R1 + R3/R2) = -(10/3 + 10/14). *)
  let expected = -.((10.0 /. 3.0) +. (10.0 /. 14.0)) in
  checkf 1e-2 "summing gain" expected (Trace.last_value r.trace)

let test_opamp_dc_gain () =
  let tc = Circuits.opamp () in
  let r = run_dc tc ~dc_inputs:[ ("in", 1.0) ] ~t_stop:2e-3 in
  (* Inverting stage: -R2/R1 = -4, up to finite-gain/loading terms. *)
  checkf 2e-2 "inverting gain" (-4.0) (Trace.last_value r.trace)

let test_rc_charge_curve () =
  let tc = Circuits.rc_ladder 1 in
  let stimuli = [ ("in", Stimulus.constant 1.0) ] in
  let dt = 1e-6 in
  let r =
    Engine.eln_like tc.circuit ~inputs:stimuli ~output:tc.output ~dt
      ~t_stop:500e-6
  in
  let tau = 5.0e3 *. 25.0e-9 in
  List.iter
    (fun t ->
      let expected = 1.0 -. exp (-.t /. tau) in
      let got = Trace.sample_at r.trace t in
      checkf 3e-3 (Printf.sprintf "v(t=%g)" t) expected got)
    [ 50e-6; 125e-6; 250e-6; 450e-6 ]

let test_spice_matches_eln () =
  List.iter
    (fun (tc : Circuits.testcase) ->
      let dt = 1e-6 and t_stop = 2e-3 in
      let s = Engine.run_testcase_spice tc ~dt ~t_stop in
      let e = Engine.run_testcase_eln tc ~dt ~t_stop in
      let err =
        Amsvp_util.Metrics.nrmse_traces ~reference:s.trace e.trace ~t0:0.0
          ~dt:(2.0 *. dt) ~n:999
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s spice vs eln NRMSE=%g" tc.label err)
        true (err < 5e-3))
    [ Circuits.two_input (); Circuits.rc_ladder 1; Circuits.opamp () ]

let test_rlc_step_response () =
  (* Series RLC, zeta = 0.5: underdamped step response overshoots and
     settles to the drive level. *)
  let tc = Circuits.rlc_series () in
  let stimuli = [ ("in", Stimulus.constant 1.0) ] in
  let dt = 1e-6 in
  let r =
    Engine.eln_like tc.circuit ~inputs:stimuli ~output:tc.output ~dt
      ~t_stop:10e-3
  in
  (* Peak of the underdamped response: 1 + exp(-pi*zeta/sqrt(1-zeta^2))
     = 1.163 for zeta = 0.5. *)
  let peak = ref 0.0 in
  for i = 0 to Trace.length r.trace - 1 do
    peak := max !peak (Trace.value r.trace i)
  done;
  checkf 2e-2 "overshoot" 1.163 !peak;
  checkf 1e-3 "settles to drive" 1.0 (Trace.last_value r.trace)

let test_engine_stats () =
  let tc = Circuits.rc_ladder 1 in
  let r = Engine.run_testcase_spice ~substeps:4 ~iterations:2 tc ~dt:1e-5 ~t_stop:1e-3 in
  Alcotest.(check int) "steps" 100 r.stats.steps;
  Alcotest.(check int) "solves = steps*substeps*iters" 800 r.stats.solves;
  Alcotest.(check int) "factorizations track solves" 800 r.stats.factorizations;
  let e = Engine.run_testcase_eln tc ~dt:1e-5 ~t_stop:1e-3 in
  Alcotest.(check int) "eln factors once" 1 e.stats.factorizations;
  Alcotest.(check int) "eln one solve per step" 100 e.stats.solves

let test_bad_arguments () =
  let tc = Circuits.rc_ladder 1 in
  Alcotest.(check bool) "dt<=0 rejected" true
    (try
       ignore (Engine.run_testcase_eln tc ~dt:0.0 ~t_stop:1.0);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "missing stimulus rejected" true
    (try
       ignore
         (Engine.eln_like tc.circuit ~inputs:[] ~output:tc.output ~dt:1e-6
            ~t_stop:1e-5);
       false
     with Invalid_argument _ -> true)

(* DC operating point *)

module Dc = Amsvp_mna.Dc

let test_dc_divider_and_currents () =
  let c = Circuit.create () in
  Circuit.add_vsource c ~name:"vs" ~pos:"a" ~neg:"gnd" (Component.Dc 9.0);
  Circuit.add_resistor c ~name:"r1" ~pos:"a" ~neg:"mid" 1.0e3;
  Circuit.add_resistor c ~name:"r2" ~pos:"mid" ~neg:"gnd" 2.0e3;
  let op = Dc.operating_point c in
  checkf 1e-9 "divider" 6.0 (Dc.voltage op "mid");
  checkf 1e-12 "source current" (-3.0e-3) (Dc.current op "vs");
  checkf 1e-12 "resistor current" 3.0e-3 (Dc.current op "r1")

let test_dc_capacitor_open_inductor_short () =
  let tc = Circuits.rlc_series () in
  let op = Dc.operating_point ~inputs:[ ("in", 2.0) ] tc.circuit in
  (* Inductor is a short, capacitor an open: the full drive appears on
     the output node and no current flows. *)
  checkf 1e-6 "output follows the drive" 2.0 (Dc.voltage op "out");
  checkf 1e-9 "no inductor current" 0.0 (Dc.current op "l1")

let test_dc_pwl_region_iteration () =
  (* The PWL clamp: the DC solution must land in the conducting region
     when the divider pushes the node above the threshold. *)
  let c = Circuit.create () in
  Circuit.add_vsource c ~name:"vs" ~pos:"in" ~neg:"gnd" (Component.Dc 5.0);
  Circuit.add_resistor c ~name:"r1" ~pos:"in" ~neg:"a" 1.0e3;
  Circuit.add_pwl_conductance c ~name:"d1" ~pos:"a" ~neg:"gnd"
    ~g_on:(1.0 /. 100.0) ~g_off:1e-9 ~threshold:0.0;
  let op = Dc.operating_point c in
  (* divider 100/(1000+100) * 5 *)
  checkf 1e-6 "clamped node" (5.0 *. 100.0 /. 1100.0) (Dc.voltage op "a")

let test_dc_opamp_matches_transient () =
  let tc = Circuits.opamp () in
  let op = Dc.operating_point ~inputs:[ ("in", 1.0) ] tc.circuit in
  checkf 2e-2 "inverting gain at DC" (-4.0) (Dc.voltage op "out")

(* SPICE export *)

module Export = Amsvp_netlist.Export

let test_spice_export_shape () =
  let tc = Circuits.rlc_series () in
  let deck = Export.to_spice ~title:"rlc" tc.circuit in
  let contains needle =
    let n = String.length deck and m = String.length needle in
    let rec go i = i + m <= n && (String.sub deck i m = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "title" true (contains "* rlc");
  Alcotest.(check bool) "resistor card" true (contains "Rr1 in n1 100");
  Alcotest.(check bool) "inductor card" true (contains "Ll1 n1 out 0.01");
  Alcotest.(check bool) "capacitor card" true (contains "Cc1 out 0 1e-06");
  Alcotest.(check bool) "input source annotated" true
    (contains "Vvin in 0 DC 0 ; external input in");
  Alcotest.(check bool) "terminated" true (contains ".end")

(* Sparse LU *)

module Sparse = Amsvp_mna.Sparse

let test_sparse_matches_dense_mna () =
  List.iter
    (fun (tc : Circuits.testcase) ->
      let sys = System.build tc.circuit in
      let n = System.size sys in
      let dense = Matrix.lu_factor (System.stamp_matrix sys ~h:1e-6) in
      let sparse =
        Sparse.lu_factor ~n (System.stamp_triplets sys ~h:1e-6)
      in
      let b = Array.init n (fun i -> float_of_int ((i mod 7) - 3) /. 3.0) in
      let xd = Matrix.lu_solve dense b in
      let xs = Sparse.lu_solve sparse b in
      Array.iteri
        (fun i v ->
          if abs_float (v -. xs.(i)) > 1e-9 *. (1.0 +. abs_float v) then
            Alcotest.failf "%s: component %d differs: dense %g sparse %g"
              tc.label i v xs.(i))
        xd)
    [ Circuits.two_input (); Circuits.rc_ladder 8; Circuits.opamp ();
      Circuits.rlc_series () ]

let test_sparse_singular () =
  Alcotest.(check bool) "structural zero column" true
    (try
       ignore (Sparse.lu_factor ~n:2 [ (0, 0, 1.0); (1, 0, 1.0) ]);
       false
     with Sparse.Singular _ -> true)

let test_sparse_fill_stays_bounded_on_ladder () =
  (* An RC ladder is essentially banded: fill-in must stay linear in
     the circuit size (the dense factor is quadratic). *)
  let measure n =
    let tc = Circuits.rc_ladder n in
    let sys = System.build tc.circuit in
    let f =
      Sparse.lu_factor ~n:(System.size sys) (System.stamp_triplets sys ~h:1e-6)
    in
    (System.size sys, Sparse.nnz f)
  in
  let n1, z1 = measure 20 and n2, z2 = measure 40 in
  let density1 = float_of_int z1 /. float_of_int (n1 * n1) in
  let density2 = float_of_int z2 /. float_of_int (n2 * n2) in
  Alcotest.(check bool)
    (Printf.sprintf "density falls with size (%.3f -> %.3f)" density1 density2)
    true (density2 < density1);
  Alcotest.(check bool) "near-linear fill" true
    (float_of_int z2 < 2.6 *. float_of_int z1)

let prop_sparse_random_systems =
  QCheck.Test.make ~name:"sparse LU solves random diagonally-dominant systems"
    ~count:50
    QCheck.(list_of_size (Gen.int_range 5 40) (triple (int_range 0 9) (int_range 0 9) (float_range (-2.0) 2.0)))
    (fun entries ->
      let n = 10 in
      let triplets =
        List.map (fun (i, j, v) -> (i, j, v)) entries
        @ List.init n (fun i -> (i, i, 25.0))
      in
      let f = Sparse.lu_factor ~n triplets in
      let b = Array.init n (fun i -> float_of_int (i - 4)) in
      let x = Sparse.lu_solve f b in
      (* residual check against the assembled dense matrix *)
      let m = Matrix.create n in
      List.iter (fun (i, j, v) -> Matrix.add_to m i j v) triplets;
      let back = Matrix.mat_vec m x in
      Array.for_all2 (fun u w -> abs_float (u -. w) < 1e-8) back b)

(* AC small-signal analysis *)

module Ac = Amsvp_mna.Ac

let test_ac_rc_analytic () =
  (* Single-pole RC: |H| = 1/sqrt(1+(wRC)^2), phase = -atan(wRC). *)
  let tc = Circuits.rc_ladder 1 in
  let rc = 5.0e3 *. 25.0e-9 in
  List.iter
    (fun f ->
      let [ p ] =
        (Ac.analyze tc.circuit ~input:"in" ~output:tc.output ~freqs:[ f ]
          : Ac.point list)
      in
      let w = 2.0 *. Float.pi *. f in
      let expected = 1.0 /. sqrt (1.0 +. ((w *. rc) ** 2.0)) in
      checkf 1e-9 (Printf.sprintf "|H| at %g Hz" f) expected
        (Complex.norm p.Ac.response);
      checkf 1e-6 (Printf.sprintf "phase at %g Hz" f)
        (-.atan (w *. rc) *. 180.0 /. Float.pi)
        (Ac.phase_deg p))
    [ 10.0; 1.0e3; 1.0 /. (2.0 *. Float.pi *. rc); 100.0e3 ]
  [@warning "-8"]

let test_ac_rlc_resonance () =
  (* Series RLC: |H| across the capacitor peaks near f0 and equals
     1/(2 zeta) at f0 for moderate damping; zeta = 0.5 gives ~1. *)
  let tc = Circuits.rlc_series () in
  let f0 = 1.0 /. (2.0 *. Float.pi *. sqrt (10.0e-3 *. 1.0e-6)) in
  let points =
    Ac.analyze tc.circuit ~input:"in" ~output:tc.output
      ~freqs:[ f0 /. 100.0; f0; f0 *. 100.0 ]
  in
  match points with
  | [ low; res; high ] ->
      checkf 1e-3 "DC gain 1" 1.0 (Complex.norm low.Ac.response);
      checkf 1e-3 "Q = 1/(2 zeta) at f0" 1.0 (Complex.norm res.Ac.response);
      Alcotest.(check bool) "rolloff" true (Complex.norm high.Ac.response < 1e-3)
  | _ -> Alcotest.fail "three points"

let test_ac_two_input_gain () =
  let tc = Circuits.two_input () in
  let points =
    Ac.analyze tc.circuit ~input:"in1" ~output:tc.output ~freqs:[ 100.0 ]
  in
  match points with
  | [ p ] ->
      (* Inverting path from in1: -R3/R1 = -10/3. *)
      checkf 1e-2 "summing path gain" (10.0 /. 3.0) (Complex.norm p.Ac.response);
      checkf 1.0 "inverting phase" 180.0 (abs_float (Ac.phase_deg p))
  | _ -> Alcotest.fail "one point"

let test_ac_matches_abstracted_gain () =
  (* The discrete-time abstracted model must track the network's AC
     response for frequencies well below 1/dt. *)
  let tc = Circuits.rc_ladder 2 in
  let dt = 1e-7 in
  let rep = Amsvp_core.Flow.abstract_testcase ~mode:`Exact tc ~dt in
  let freq = 2.0e3 in
  let measure_gain () =
    let runner = Amsvp_sf.Sfprogram.Runner.create rep.Amsvp_core.Flow.program in
    let stim = Stimulus.sine ~freq ~amplitude:1.0 () in
    let t_stop = 10.0 /. freq in
    let tr = Amsvp_sf.Sfprogram.Runner.run runner ~stimuli:[| stim |] ~t_stop () in
    let n = Trace.length tr in
    let peak = ref 0.0 in
    for i = 2 * n / 3 to n - 1 do
      peak := max !peak (abs_float (Trace.value tr i))
    done;
    !peak
  in
  let time_domain = measure_gain () in
  let points = Ac.analyze tc.circuit ~input:"in" ~output:tc.output ~freqs:[ freq ] in
  match points with
  | [ p ] ->
      checkf 5e-3 "time-domain gain tracks AC" (Complex.norm p.Ac.response)
        time_domain
  | _ -> Alcotest.fail "one point"

let test_ac_errors () =
  let tc = Circuits.rc_ladder 1 in
  Alcotest.(check bool) "unknown input" true
    (try
       ignore (Ac.analyze tc.circuit ~input:"zz" ~output:tc.output ~freqs:[ 1.0 ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad frequency" true
    (try
       ignore (Ac.analyze tc.circuit ~input:"in" ~output:tc.output ~freqs:[ 0.0 ]);
       false
     with Invalid_argument _ -> true)

(* Kirchhoff consistency: the topology equations of the Graph module
   must hold on the MNA solution at DC steady state. *)
let test_kirchhoff_consistency_at_dc () =
  List.iter
    (fun (tc : Circuits.testcase) ->
      let dc_inputs =
        List.map (fun (n, _) -> (n, Stimulus.constant 1.0)) tc.stimuli
      in
      let sys = System.build tc.circuit in
      let n = System.size sys in
      let m = Amsvp_mna.System.stamp_matrix sys ~h:1e-6 in
      let lu = Matrix.lu_factor m in
      (* Iterate to steady state with a large number of steps. *)
      let x = ref (Array.make n 0.0) in
      let rhs = Array.make n 0.0 in
      let input name = List.assoc name dc_inputs 0.0 in
      for _ = 1 to 5000 do
        System.stamp_rhs sys ~h:1e-6 ~state:!x ~input ~rhs;
        x := Matrix.lu_solve lu rhs
      done;
      let state = !x in
      (* Environment: potentials from node voltages, flows per device. *)
      let env (v : Expr.var) =
        match v.Expr.base with
        | Expr.Potential _ -> System.output_value sys v state
        | Expr.Flow (name, "") -> (
            match Circuit.find tc.circuit name with
            | Some { Component.kind = Component.Capacitor _; _ } ->
                0.0 (* no current through capacitors at steady state *)
            | Some { Component.kind = Component.Vccs { gm; ctrl_pos; ctrl_neg }; _ } ->
                gm
                *. System.output_value sys (Expr.potential ctrl_pos ctrl_neg) state
            | Some { Component.kind = Component.Isource (Component.Dc j); _ } -> j
            | Some _ -> System.output_value sys v state
            | None -> Alcotest.failf "unknown device %s" name)
        | Expr.Flow _ | Expr.Signal _ | Expr.Param _ ->
            Alcotest.failf "unexpected variable %s" (Expr.var_name v)
      in
      let g = Graph.of_circuit tc.circuit in
      List.iter
        (fun eq ->
          let r = Expr.eval env (Eqn.residual eq) in
          if abs_float r > 1e-6 then
            Alcotest.failf "%s: %s residual %g" tc.label (Eqn.to_string eq) r)
        (Graph.kcl_equations g @ Graph.kvl_equations g))
    [ Circuits.two_input (); Circuits.rc_ladder 3; Circuits.opamp () ]

let prop_random_rc_ladder_dc_value =
  (* At DC, capacitors are open: the ladder output equals the input. *)
  QCheck.Test.make ~name:"random RC ladder settles to the input level" ~count:20
    QCheck.(pair (int_range 1 6) (float_range 0.5 4.0))
    (fun (n, level) ->
      let tc = Circuits.rc_ladder n in
      let r =
        Engine.eln_like tc.circuit
          ~inputs:[ ("in", Stimulus.constant level) ]
          ~output:tc.output ~dt:2e-6 ~t_stop:20e-3
      in
      abs_float (Trace.last_value r.trace -. level) < 1e-3)

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "mna"
    [
      ( "matrix",
        [
          Alcotest.test_case "known system" `Quick test_lu_solve_known_system;
          Alcotest.test_case "pivoting" `Quick test_lu_pivoting;
          Alcotest.test_case "singular detected" `Quick test_singular_detected;
        ] );
      ( "dc",
        [
          Alcotest.test_case "voltage divider" `Quick test_voltage_divider;
          Alcotest.test_case "conflicting sources singular" `Quick
            test_vsource_loop_singular;
          Alcotest.test_case "2IN gain" `Quick test_two_input_dc_gain;
          Alcotest.test_case "OA gain" `Quick test_opamp_dc_gain;
        ] );
      ( "transient",
        [
          Alcotest.test_case "RC charge curve" `Quick test_rc_charge_curve;
          Alcotest.test_case "RLC step response" `Quick test_rlc_step_response;
          Alcotest.test_case "spice vs eln" `Quick test_spice_matches_eln;
          Alcotest.test_case "engine stats" `Quick test_engine_stats;
          Alcotest.test_case "bad arguments" `Quick test_bad_arguments;
        ] );
      ( "op",
        [
          Alcotest.test_case "divider and currents" `Quick
            test_dc_divider_and_currents;
          Alcotest.test_case "cap open / inductor short" `Quick
            test_dc_capacitor_open_inductor_short;
          Alcotest.test_case "PWL region iteration" `Quick
            test_dc_pwl_region_iteration;
          Alcotest.test_case "opamp gain" `Quick test_dc_opamp_matches_transient;
          Alcotest.test_case "SPICE export" `Quick test_spice_export_shape;
        ] );
      ( "sparse",
        [
          Alcotest.test_case "matches dense on MNA systems" `Quick
            test_sparse_matches_dense_mna;
          Alcotest.test_case "singular detected" `Quick test_sparse_singular;
          Alcotest.test_case "bounded fill on ladders" `Quick
            test_sparse_fill_stays_bounded_on_ladder;
        ] );
      ( "ac",
        [
          Alcotest.test_case "RC analytic response" `Quick test_ac_rc_analytic;
          Alcotest.test_case "RLC resonance" `Quick test_ac_rlc_resonance;
          Alcotest.test_case "2IN gain" `Quick test_ac_two_input_gain;
          Alcotest.test_case "matches abstracted model" `Quick
            test_ac_matches_abstracted_gain;
          Alcotest.test_case "errors" `Quick test_ac_errors;
        ] );
      ( "kirchhoff",
        [
          Alcotest.test_case "consistency at DC" `Quick
            test_kirchhoff_consistency_at_dc;
        ] );
      ("properties",
        qt
          [
            prop_lu_roundtrip;
            prop_sparse_random_systems;
            prop_random_rc_ladder_dc_value;
          ]);
    ]
