(* Tests for the Amsvp_obs instrumentation layer: span recorder,
   metrics registry, and sink output (Chrome trace JSON, Prometheus
   text).  The recorder is global state, so every test starts from
   [Obs.reset] and an explicit enable/disable. *)

module Obs = Amsvp_obs.Obs

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

(* A minimal JSON reader, enough to check well-formedness of the Chrome
   trace output (the toolchain has no JSON library). *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
            advance ();
            match peek () with
            | Some (('"' | '\\' | '/') as c) ->
                Buffer.add_char b c;
                advance ();
                go ()
            | Some 'b' -> Buffer.add_char b '\b'; advance (); go ()
            | Some 'f' -> Buffer.add_char b '\012'; advance (); go ()
            | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
            | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
            | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
            | Some 'u' ->
                advance ();
                if !pos + 4 > n then fail "truncated \\u escape";
                let hex = String.sub s !pos 4 in
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail "bad \\u escape"
                in
                (* Only BMP code points below 0x80 appear in our output;
                   anything else is kept as '?' — good enough for a
                   well-formedness check. *)
                Buffer.add_char b
                  (if code < 0x80 then Char.chr code else '?');
                pos := !pos + 4;
                go ()
            | _ -> fail "bad escape")
        | Some c ->
            Buffer.add_char b c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let is_num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> is_num_char c | None -> false) do
        advance ()
      done;
      let lit = String.sub s start (!pos - start) in
      match float_of_string_opt lit with
      | Some f -> f
      | None -> fail (Printf.sprintf "bad number %S" lit)
    in
    let expect_lit lit v =
      let l = String.length lit in
      if !pos + l <= n && String.sub s !pos l = lit then (
        pos := !pos + l;
        v)
      else fail (Printf.sprintf "expected %s" lit)
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '"' -> Str (parse_string ())
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then (
            advance ();
            Obj [])
          else
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  List.rev ((k, v) :: acc)
              | _ -> fail "expected ',' or '}'"
            in
            Obj (members [])
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then (
            advance ();
            List [])
          else
            let rec elems acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elems (v :: acc)
              | Some ']' ->
                  advance ();
                  List.rev (v :: acc)
              | _ -> fail "expected ',' or ']'"
            in
            List (elems [])
      | Some 't' -> expect_lit "true" (Bool true)
      | Some 'f' -> expect_lit "false" (Bool false)
      | Some 'n' -> expect_lit "null" Null
      | Some _ -> Num (parse_number ())
      | None -> fail "unexpected end of input"
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member k = function
    | Obj fields -> List.assoc_opt k fields
    | _ -> None
end

let fresh () =
  Obs.reset ();
  Obs.disable ()

(* Spans *)

let test_span_nesting () =
  fresh ();
  Obs.enable ();
  let r =
    Obs.with_span "outer" (fun () ->
        Obs.with_span ~cat:"t" "inner" (fun () -> 41) + 1)
  in
  Alcotest.(check int) "result threaded through" 42 r;
  Alcotest.(check int) "two spans" 2 (Obs.span_count ());
  match Obs.spans () with
  | [ inner; outer ] ->
      Alcotest.(check string) "inner completes first" "inner" inner.Obs.name;
      Alcotest.(check string) "outer completes last" "outer" outer.Obs.name;
      Alcotest.(check int) "outer depth" 0 outer.Obs.depth;
      Alcotest.(check int) "inner depth" 1 inner.Obs.depth;
      Alcotest.(check string) "category" "t" inner.Obs.cat;
      Alcotest.(check bool) "inner starts after outer" true
        (inner.Obs.start_ns >= outer.Obs.start_ns);
      Alcotest.(check bool) "inner nested in outer duration" true
        (inner.Obs.start_ns + inner.Obs.dur_ns
        <= outer.Obs.start_ns + outer.Obs.dur_ns)
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l)

let test_span_disabled_noop () =
  fresh ();
  let ran = ref false in
  let r = Obs.with_span "ghost" (fun () -> ran := true; 7) in
  Obs.instant "ghost-instant";
  Alcotest.(check int) "result" 7 r;
  Alcotest.(check bool) "body still runs" true !ran;
  Alcotest.(check int) "nothing recorded" 0 (Obs.span_count ())

let test_timed_always_measures () =
  fresh ();
  (* Recorder off: duration still measured, no span stored. *)
  let (), dt = Obs.timed "work" (fun () -> Sys.opaque_identity (ignore (Sys.opaque_identity 0))) in
  Alcotest.(check bool) "non-negative duration" true (dt >= 0.0);
  Alcotest.(check int) "no span when disabled" 0 (Obs.span_count ());
  (* Recorder on: same call also records. *)
  Obs.enable ();
  let v, dt' = Obs.timed "work" (fun () -> 5) in
  Alcotest.(check int) "value" 5 v;
  Alcotest.(check bool) "non-negative duration" true (dt' >= 0.0);
  Alcotest.(check int) "span when enabled" 1 (Obs.span_count ())

let test_span_exception_path () =
  fresh ();
  Obs.enable ();
  (try Obs.with_span "boom" (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "span recorded on raise" 1 (Obs.span_count ());
  (* Depth unwinds: the next span is top-level again. *)
  Obs.with_span "after" (fun () -> ());
  match Obs.spans () with
  | [ _; after ] -> Alcotest.(check int) "depth unwound" 0 after.Obs.depth
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l)

(* Metrics *)

let test_counter_semantics () =
  fresh ();
  let c = Obs.Counter.make ~help:"test" "test_obs_counter" in
  let c' = Obs.Counter.make "test_obs_counter" in
  Obs.Counter.incr c;
  Obs.Counter.add c' 4;
  Alcotest.(check int) "find-or-create shares state" 5 (Obs.Counter.value c);
  Alcotest.(check string) "name" "test_obs_counter" (Obs.Counter.name c);
  Alcotest.check_raises "negative add rejected"
    (Invalid_argument "Obs.Counter.add: negative increment") (fun () ->
      Obs.Counter.add c (-1));
  Alcotest.(check int) "value unchanged after rejection" 5
    (Obs.Counter.value c)

let test_metric_kind_clash () =
  fresh ();
  ignore (Obs.Gauge.make "test_obs_kind_clash");
  Alcotest.(check bool) "counter over gauge rejected" true
    (try
       ignore (Obs.Counter.make "test_obs_kind_clash");
       false
     with Invalid_argument _ -> true)

let test_gauge () =
  fresh ();
  let g = Obs.Gauge.make "test_obs_gauge" in
  Obs.Gauge.set g 2.5;
  Alcotest.(check (float 0.0)) "set/value" 2.5 (Obs.Gauge.value g)

let test_histogram_semantics () =
  fresh ();
  let h =
    Obs.Histogram.make ~buckets:[| 1.0; 5.0; 10.0 |] "test_obs_histogram"
  in
  List.iter (Obs.Histogram.observe h) [ 0.5; 1.0; 3.0; 10.0; 100.0 ];
  Alcotest.(check int) "count" 5 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 114.5 (Obs.Histogram.sum h);
  (* le semantics: a sample equal to a bound lands in that bucket;
     counts are cumulative and end with (+Inf, total). *)
  (match Obs.Histogram.bucket_counts h with
  | [ (b1, c1); (b2, c2); (b3, c3); (binf, cinf) ] ->
      Alcotest.(check (float 0.0)) "bound 1" 1.0 b1;
      Alcotest.(check int) "le 1" 2 c1;
      Alcotest.(check (float 0.0)) "bound 5" 5.0 b2;
      Alcotest.(check int) "le 5" 3 c2;
      Alcotest.(check (float 0.0)) "bound 10" 10.0 b3;
      Alcotest.(check int) "le 10" 4 c3;
      Alcotest.(check bool) "+Inf bound" true (binf = infinity);
      Alcotest.(check int) "le +Inf" 5 cinf
  | l -> Alcotest.failf "expected 4 buckets, got %d" (List.length l));
  Alcotest.(check bool) "non-ascending buckets rejected" true
    (try
       ignore
         (Obs.Histogram.make ~buckets:[| 2.0; 1.0 |] "test_obs_histogram_bad");
       false
     with Invalid_argument _ -> true)

let test_histogram_boundaries () =
  (* Regression pin for the documented bucket-boundary semantics:
     bucket i covers (bounds[i-1], bounds[i]] — a value exactly on an
     upper bound counts in that bucket, one ulp above spills into the
     next, and NaN lands in the +Inf overflow bucket. *)
  fresh ();
  let h =
    Obs.Histogram.make ~buckets:[| 1.0; 2.0 |] "test_obs_histogram_bounds"
  in
  let just_above x = x +. (x *. epsilon_float) in
  List.iter (Obs.Histogram.observe h)
    [ 1.0; just_above 1.0; 2.0; just_above 2.0; nan ];
  match Obs.Histogram.bucket_counts h with
  | [ (_, le1); (_, le2); (binf, leinf) ] ->
      (* le 1: exactly the sample sitting on the bound. *)
      Alcotest.(check int) "value on bound 1 is inclusive" 1 le1;
      (* le 2: adds 1+eps and the sample on bound 2, not 2+eps. *)
      Alcotest.(check int) "value on bound 2 is inclusive" 3 le2;
      Alcotest.(check bool) "+Inf bound" true (binf = infinity);
      (* 2+eps and NaN only reach the overflow bucket. *)
      Alcotest.(check int) "overflow gets the rest" 5 leinf
  | l -> Alcotest.failf "expected 3 buckets, got %d" (List.length l)

let test_histogram_non_finite () =
  (* Regression for the full non-finite family: -Inf satisfies every
     [v <= bound] so it lands in the first bucket, +Inf and NaN walk
     past all bounds into overflow, and [count] stays consistent with
     the bucket totals — a monitoring read never sees a sample
     "disappear" because it was not a number. *)
  fresh ();
  let h =
    Obs.Histogram.make ~buckets:[| 1.0; 2.0 |] "test_obs_histogram_nonfinite"
  in
  List.iter (Obs.Histogram.observe h) [ neg_infinity; infinity; nan; 1.5 ];
  Alcotest.(check int) "count includes non-finite" 4 (Obs.Histogram.count h);
  (match Obs.Histogram.bucket_counts h with
  | [ (_, le1); (_, le2); (_, leinf) ] ->
      Alcotest.(check int) "-Inf in first bucket" 1 le1;
      Alcotest.(check int) "1.5 joins cumulatively" 2 le2;
      Alcotest.(check int) "+Inf and NaN in overflow" 4 leinf
  | l -> Alcotest.failf "expected 3 buckets, got %d" (List.length l));
  Alcotest.(check bool) "sum is poisoned, by design" true
    (Float.is_nan (Obs.Histogram.sum h))

let test_reset () =
  fresh ();
  Obs.enable ();
  let c = Obs.Counter.make "test_obs_reset_counter" in
  let h = Obs.Histogram.make "test_obs_reset_histogram" in
  Obs.Counter.add c 3;
  Obs.Histogram.observe h 1.0;
  Obs.with_span "s" (fun () -> ());
  Obs.reset ();
  Alcotest.(check int) "spans cleared" 0 (Obs.span_count ());
  Alcotest.(check int) "counter zeroed" 0 (Obs.Counter.value c);
  Alcotest.(check int) "histogram zeroed" 0 (Obs.Histogram.count h);
  Alcotest.(check bool) "enable flag untouched" true (Obs.enabled ());
  let c' = Obs.Counter.make "test_obs_reset_counter" in
  Obs.Counter.incr c';
  Alcotest.(check int) "registration survives reset" 1 (Obs.Counter.value c)

(* Sinks *)

let test_chrome_trace_json () =
  fresh ();
  Obs.enable ();
  Obs.with_span ~cat:"flow"
    ~args:[ ("model", "rc \"ladder\"\n") ]
    "flow.abstract"
    (fun () -> Obs.with_span "flow.solve" (fun () -> ()));
  Obs.instant "marker";
  let doc = Json.parse (Obs.chrome_trace ()) in
  let events =
    match Json.member "traceEvents" doc with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "traceEvents array missing"
  in
  (* Metadata event + 2 spans + 1 instant. *)
  Alcotest.(check bool) "non-empty traceEvents" true (List.length events >= 4);
  let phases =
    List.filter_map
      (fun e ->
        match Json.member "ph" e with Some (Json.Str p) -> Some p | _ -> None)
      events
  in
  Alcotest.(check int) "every event has a phase" (List.length events)
    (List.length phases);
  Alcotest.(check bool) "has complete events" true (List.mem "X" phases);
  Alcotest.(check bool) "has instant event" true (List.mem "i" phases);
  let solve =
    List.find_opt
      (fun e -> Json.member "name" e = Some (Json.Str "flow.solve"))
      events
  in
  (match solve with
  | Some e ->
      (match Json.member "ts" e with
      | Some (Json.Num ts) ->
          Alcotest.(check bool) "ts is a number" true (ts >= 0.0)
      | _ -> Alcotest.fail "ts missing");
      (match Json.member "dur" e with
      | Some (Json.Num d) ->
          Alcotest.(check bool) "dur is a number" true (d >= 0.0)
      | _ -> Alcotest.fail "dur missing")
  | None -> Alcotest.fail "flow.solve event missing");
  (* The args value above contains a quote, a backslash-sensitive
     string and a newline: the parser round-trips it only if escaping
     is correct. *)
  let abstract =
    List.find
      (fun e -> Json.member "name" e = Some (Json.Str "flow.abstract"))
      events
  in
  match Json.member "args" abstract with
  | Some (Json.Obj [ ("model", Json.Str v) ]) ->
      Alcotest.(check string) "args escaped and recovered" "rc \"ladder\"\n" v
  | _ -> Alcotest.fail "args object missing"

let test_prometheus_output () =
  fresh ();
  let c = Obs.Counter.make ~help:"a test counter" "test_obs prom.counter" in
  Obs.Counter.add c 7;
  let h =
    Obs.Histogram.make ~buckets:[| 1.0; 2.0 |] "test_obs_prom_histogram"
  in
  Obs.Histogram.observe h 1.5;
  Obs.enable ();
  Obs.with_span "flow.solve" (fun () -> ());
  let out = Obs.prometheus () in
  (* Metric names are sanitised to [a-zA-Z0-9_:]. *)
  Alcotest.(check bool) "counter line" true
    (contains out "test_obs_prom_counter 7");
  Alcotest.(check bool) "counter TYPE" true
    (contains out "# TYPE test_obs_prom_counter counter");
  Alcotest.(check bool) "counter HELP" true
    (contains out "# HELP test_obs_prom_counter a test counter");
  Alcotest.(check bool) "histogram +Inf bucket" true
    (contains out "test_obs_prom_histogram_bucket{le=\"+Inf\"} 1");
  Alcotest.(check bool) "histogram count" true
    (contains out "test_obs_prom_histogram_count 1");
  Alcotest.(check bool) "histogram sum" true
    (contains out "test_obs_prom_histogram_sum 1.5");
  Alcotest.(check bool) "span aggregate calls" true
    (contains out "amsvp_span_flow_solve_calls_total 1");
  Alcotest.(check bool) "span aggregate seconds" true
    (contains out "amsvp_span_flow_solve_seconds_total")

let test_prometheus_hostile_labels () =
  fresh ();
  (* Exposition-format escaping: label values may contain backslash,
     double quote and newline, each of which must come out
     backslash-escaped; HELP text escapes backslash and newline only.
     A label value that merely LOOKS escaped must round-trip
     unchanged. *)
  let c =
    Obs.Counter.make ~help:"line one\nline two \\ backslash"
      ~labels:
        [
          ("path", "C:\\temp\\\"quoted\" file\nsecond line");
          ("already", "looks \\n escaped");
        ]
      "test_obs_hostile_counter"
  in
  Obs.Counter.add c 3;
  let g =
    Obs.Gauge.make ~labels:[ ("k", "v\"\n\\") ] "test_obs_hostile_gauge"
  in
  Obs.Gauge.set g 1.0;
  let out = Obs.prometheus () in
  Alcotest.(check bool) "label value escaped" true
    (contains out
       "test_obs_hostile_counter{path=\"C:\\\\temp\\\\\\\"quoted\\\" \
        file\\nsecond line\",already=\"looks \\\\n escaped\"} 3");
  Alcotest.(check bool) "help escaped" true
    (contains out
       "# HELP test_obs_hostile_counter line one\\nline two \\\\ backslash");
  Alcotest.(check bool) "gauge label escaped" true
    (contains out "test_obs_hostile_gauge{k=\"v\\\"\\n\\\\\"} 1");
  (* No raw newline may survive into the exposition: a torn sample
     line corrupts every parser downstream. The hostile counter must
     occupy exactly its HELP, TYPE and sample lines — a tear would
     strand the value on a line without the metric name. *)
  let lines = String.split_on_char '\n' out in
  let named =
    List.length
      (List.filter (fun l -> contains l "test_obs_hostile_counter") lines)
  in
  Alcotest.(check int) "exactly HELP + TYPE + sample lines" 3 named;
  List.iter
    (fun l ->
      Alcotest.(check bool)
        ("no stray continuation line: " ^ l)
        false
        (contains l "second line" && not (contains l "test_obs_hostile")))
    lines

let test_summary_output () =
  fresh ();
  let c = Obs.Counter.make "test_obs_summary_counter" in
  Obs.Counter.add c 2;
  Obs.enable ();
  Obs.with_span "phase.a" (fun () -> ());
  Obs.with_span "phase.a" (fun () -> ());
  let out = Obs.summary () in
  Alcotest.(check bool) "mentions span" true (contains out "phase.a");
  Alcotest.(check bool) "mentions counter" true
    (contains out "test_obs_summary_counter")

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "disabled no-op" `Quick test_span_disabled_noop;
          Alcotest.test_case "timed" `Quick test_timed_always_measures;
          Alcotest.test_case "exception path" `Quick test_span_exception_path;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter" `Quick test_counter_semantics;
          Alcotest.test_case "kind clash" `Quick test_metric_kind_clash;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram" `Quick test_histogram_semantics;
          Alcotest.test_case "histogram boundaries" `Quick
            test_histogram_boundaries;
          Alcotest.test_case "histogram non-finite" `Quick
            test_histogram_non_finite;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "chrome trace json" `Quick test_chrome_trace_json;
          Alcotest.test_case "prometheus" `Quick test_prometheus_output;
          Alcotest.test_case "prometheus hostile labels" `Quick
            test_prometheus_hostile_labels;
          Alcotest.test_case "summary" `Quick test_summary_output;
        ] );
    ]
