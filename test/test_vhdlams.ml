(* Tests for the VHDL-AMS front-end: the other syntax of Section II-A,
   elaborated onto the same flat model as Verilog-AMS. *)

module Vparser = Amsvp_vhdlams.Vparser
module Vast = Amsvp_vhdlams.Vast
module Velaborate = Amsvp_vhdlams.Velaborate
module Vsources = Amsvp_vhdlams.Vsources
module E = Amsvp_vams.Elaborate
module Sources = Amsvp_vams.Sources
module Circuit = Amsvp_netlist.Circuit
module Component = Amsvp_netlist.Component
module Flow = Amsvp_core.Flow
module Sfprogram = Amsvp_sf.Sfprogram
module Stimulus = Amsvp_util.Stimulus
module Metrics = Amsvp_util.Metrics
module Trace = Amsvp_util.Trace

(* Parser *)

let test_case_insensitive () =
  match Vparser.parse_expr_string "A + B" with
  | Vast.Binop (`Add, Vast.Name "a", Vast.Name "b") -> ()
  | _ -> Alcotest.fail "identifiers should be lowercased"

let test_dot_attribute () =
  match Vparser.parse_expr_string "c * v'dot" with
  | Vast.Binop (`Mul, Vast.Name "c", Vast.Dot "v") -> ()
  | _ -> Alcotest.fail "'dot attribute"

let test_underscored_number () =
  match Vparser.parse_expr_string "1_000.5" with
  | Vast.Number f -> Alcotest.(check (float 0.0)) "underscores" 1000.5 f
  | _ -> Alcotest.fail "number"

let test_parse_entity_structure () =
  let design = Vparser.parse Vsources.primitives in
  match Vast.find_entity design "resistor" with
  | None -> Alcotest.fail "resistor entity"
  | Some e ->
      Alcotest.(check (list string)) "ports" [ "p"; "n" ] e.Vast.ports;
      Alcotest.(check int) "one generic" 1 (List.length e.Vast.generics);
      Alcotest.(check bool) "architecture present" true
        (Vast.find_architecture design "resistor" <> None)

let test_parse_error_line () =
  try
    ignore (Vparser.parse "entity x is\n  port (oops);\nend entity;");
    Alcotest.fail "expected error"
  with Vparser.Parse_error (_, line, _) ->
    Alcotest.(check bool) "line recorded" true (line >= 2)

(* Elaboration *)

let test_rc3_structure () =
  let design = Vparser.parse (Vsources.rc_ladder 3) in
  let flat = Velaborate.flatten design ~top:"rc3" ~inputs:[ "tin" ] in
  Alcotest.(check int) "six contributions" 6 (List.length flat.E.contributions);
  Alcotest.(check bool) "conservative" true (E.classify flat = `Conservative);
  let circuit = E.to_circuit flat in
  Alcotest.(check int) "devices incl. driver" 7 (Circuit.device_count circuit)

let test_generic_default_and_override () =
  let src =
    Vsources.primitives
    ^ {|
entity top is
  port (terminal a : electrical);
end entity;
architecture s of top is
begin
  rdef : entity work.resistor port map (p => a, n => ground);
  rovr : entity work.resistor generic map (r => 7.5) port map (p => a, n => ground);
end architecture;
|}
  in
  let flat =
    Velaborate.flatten (Vparser.parse src) ~top:"top" ~inputs:[ "a" ]
  in
  let circuit = E.to_circuit flat in
  let resistances =
    List.filter_map
      (fun (d : Component.t) ->
        match d.Component.kind with
        | Component.Resistor r -> Some r
        | _ -> None)
      (Circuit.devices circuit)
    |> List.sort compare
  in
  Alcotest.(check (list (float 0.0))) "default and override" [ 7.5; 1000.0 ]
    resistances

let test_vhdl_matches_verilog_rc1 () =
  (* The same system written in both languages must abstract to
     numerically identical models (§II-A). *)
  let dt = 50e-9 and t_stop = 1e-3 in
  let run_program (rep : Flow.report) input_name =
    let runner = Sfprogram.Runner.create rep.Flow.program in
    ignore input_name;
    Sfprogram.Runner.run runner
      ~stimuli:[| Stimulus.square ~period:1e-3 ~low:0.0 ~high:1.0 |]
      ~t_stop ()
  in
  let vhdl =
    Velaborate.parse_and_abstract (Vsources.rc_ladder 1) ~top:"rc1"
      ~inputs:[ "tin" ]
      ~outputs:[ Expr.potential "tout" "gnd" ]
      ~dt
  in
  let verilog =
    E.parse_and_abstract (Sources.rc_ladder 1) ~top:"rc1"
      ~outputs:[ Expr.potential "out" "gnd" ]
      ~dt
  in
  let a = run_program vhdl "tin" and b = run_program verilog "in" in
  let err = Metrics.nrmse_traces ~reference:a b ~t0:0.0 ~dt:1e-6 ~n:998 in
  Alcotest.(check bool) (Printf.sprintf "NRMSE=%g" err) true (err < 1e-12)

let test_vhdl_opamp_gain () =
  let rep =
    Velaborate.parse_and_abstract Vsources.opamp ~top:"oa" ~inputs:[ "tin" ]
      ~outputs:[ Expr.potential "tout" "gnd" ]
      ~dt:50e-9
  in
  let runner = Sfprogram.Runner.create rep.Flow.program in
  let tr =
    Sfprogram.Runner.run runner ~stimuli:[| Stimulus.constant 1.0 |]
      ~t_stop:2e-3 ()
  in
  Alcotest.(check (float 2e-2)) "inverting gain" (-4.0) (Trace.last_value tr)

let test_vhdl_signal_flow () =
  let design = Vparser.parse Vsources.signal_flow_filter in
  let flat = Velaborate.flatten design ~top:"sf_lowpass" ~inputs:[ "tin" ] in
  Alcotest.(check bool) "signal flow" true (E.classify flat = `Signal_flow);
  let rep =
    Velaborate.parse_and_abstract Vsources.signal_flow_filter ~top:"sf_lowpass"
      ~inputs:[ "tin" ]
      ~outputs:[ Expr.potential "tout" "gnd" ]
      ~dt:1e-6
  in
  let runner = Sfprogram.Runner.create rep.Flow.program in
  let tr =
    Sfprogram.Runner.run runner ~stimuli:[| Stimulus.constant 1.0 |]
      ~t_stop:1e-3 ()
  in
  let expected = 1.0 -. exp (-.1e-3 /. 125e-6) in
  Alcotest.(check (float 1e-2)) "step response" expected (Trace.last_value tr)

let test_if_use_pwl () =
  let src =
    {|
entity clamp is
  port (terminal a : electrical);
end entity;
architecture behav of clamp is
  quantity v across i through a to ground;
begin
  if v >= 0.0 use
    i == 0.01 * v;
  else
    i == 1.0e-9 * v;
  end use;
end architecture;
|}
  in
  let flat = Velaborate.flatten (Vparser.parse src) ~top:"clamp" ~inputs:[ "a" ] in
  let circuit = E.to_circuit flat in
  (* if/else contributions merge into a single conditional equation
     which the recogniser maps onto the PWL device... the merged form
     is cond ? g_on*v : 0 + (not cond ? g_off*v : 0); device
     recognition accepts the canonical ternary, so this netlist
     exercises the general nonlinear path instead: the flat model must
     at least classify and keep both regions. *)
  ignore circuit;
  Alcotest.(check int) "one merged contribution + driver source" 1
    (List.length flat.E.contributions)

let test_unknown_entity () =
  Alcotest.(check bool) "unknown entity" true
    (try
       ignore
         (Velaborate.flatten
            (Vparser.parse
               "entity t is port (terminal a : electrical); end entity;\n\
                architecture s of t is begin x : entity work.widget port map \
                (p => a); end architecture;")
            ~top:"t" ~inputs:[ "a" ]);
       false
     with Velaborate.Elab_error _ -> true)

let test_unknown_input_port () =
  Alcotest.(check bool) "bad input port" true
    (try
       ignore
         (Velaborate.flatten
            (Vparser.parse
               "entity t is port (terminal a : electrical); end entity;\n\
                architecture s of t is begin end architecture;")
            ~top:"t" ~inputs:[ "zz" ]);
       false
     with Velaborate.Elab_error _ -> true)

let () =
  Alcotest.run "vhdlams"
    [
      ( "parser",
        [
          Alcotest.test_case "case insensitive" `Quick test_case_insensitive;
          Alcotest.test_case "'dot attribute" `Quick test_dot_attribute;
          Alcotest.test_case "underscored numbers" `Quick test_underscored_number;
          Alcotest.test_case "entity structure" `Quick test_parse_entity_structure;
          Alcotest.test_case "error line" `Quick test_parse_error_line;
        ] );
      ( "elaboration",
        [
          Alcotest.test_case "rc3 structure" `Quick test_rc3_structure;
          Alcotest.test_case "generic default/override" `Quick
            test_generic_default_and_override;
          Alcotest.test_case "if/use regions" `Quick test_if_use_pwl;
          Alcotest.test_case "unknown entity" `Quick test_unknown_entity;
          Alcotest.test_case "unknown input port" `Quick test_unknown_input_port;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "VHDL rc1 == Verilog rc1" `Quick
            test_vhdl_matches_verilog_rc1;
          Alcotest.test_case "OA gain" `Quick test_vhdl_opamp_gain;
          Alcotest.test_case "signal-flow filter" `Quick test_vhdl_signal_flow;
        ] );
    ]
