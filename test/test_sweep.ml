(* Tests for the sweep engine: spec round-trip, deterministic sampling,
   the domain worker pool, summary statistics, the plan-replay
   abstraction cache and end-to-end sweep determinism. *)

module Circuits = Amsvp_netlist.Circuits
module Circuit = Amsvp_netlist.Circuit
module Flow = Amsvp_core.Flow
module Sfprogram = Amsvp_sf.Sfprogram
module Spec = Amsvp_sweep.Spec
module Sampler = Amsvp_sweep.Sampler
module Pool = Amsvp_sweep.Pool
module Stats = Amsvp_sweep.Stats
module Abscache = Amsvp_sweep.Abscache
module Runner = Amsvp_sweep.Runner
module Report = Amsvp_sweep.Report
module Obs = Amsvp_obs.Obs
module Health = Amsvp_probe.Health
module Component = Amsvp_netlist.Component
module Diag = Amsvp_diag.Diag

let rich_spec =
  {
    Spec.name = "mc_rect";
    circuit = Some "RECT";
    output = Some "V(out,gnd)";
    stimulus = Some (Spec.Sine { freq = 1e3; amplitude = 1.0 });
    t_stop = Some 2e-3;
    dt = Some 1e-6;
    mode = `Exact;
    integration = `Trapezoidal;
    samples = 8;
    seed = 42;
    jobs = Some 2;
    reference = false;
    fidelity = None;
    nrmse_budget = Some 0.25;
    amplitude_limit = Some 50.0;
    point_timeout = Some 30.0;
    axes =
      [
        { Spec.param = "r1.r"; range = Spec.Grid { lo = 0.5e3; hi = 2e3; n = 3 } };
        { Spec.param = "d1.g_on";
          range = Spec.Uniform { lo = 5e-3; hi = 2e-2 } };
        { Spec.param = "d1.g_off";
          range = Spec.Normal { mean = 1e-6; sigma = 1e-7 } };
      ];
    corners =
      [
        { Spec.corner_name = "worst";
          binds = [ ("r1.r", 2.2e3); ("d1.g_on", 4e-3) ] };
      ];
  }

(* Spec *)

let test_spec_roundtrip () =
  let text = Spec.to_string rich_spec in
  (match Spec.of_string text with
  | Ok s -> Alcotest.(check bool) "round-trips" true (s = rich_spec)
  | Error m -> Alcotest.failf "reparse failed: %s" m);
  match Spec.of_string (Spec.to_string Spec.default) with
  | Ok s -> Alcotest.(check bool) "default round-trips" true (s = Spec.default)
  | Error m -> Alcotest.failf "default reparse failed: %s" m

let test_spec_parse_errors () =
  let err text =
    match Spec.of_string text with
    | Ok _ -> Alcotest.failf "expected a parse error for %S" text
    | Error m -> m
  in
  let m = err "sweep ok\nbogus directive\n" in
  Alcotest.(check bool) "line number" true
    (String.length m >= 7 && String.sub m 0 7 = "line 2:");
  ignore (err "param r1.r grid 1 2\n" : string);
  ignore (err "t_stop nope\n" : string);
  ignore (err "corner c r1.r\n" : string);
  (* Comments and blank lines are transparent. *)
  match Spec.of_string "# comment only\n\n  \t\nseed 9 # trailing\n" with
  | Ok s -> Alcotest.(check int) "seed" 9 s.Spec.seed
  | Error m -> Alcotest.failf "comment handling: %s" m

let test_spec_validate () =
  (match Spec.validate rich_spec with
  | Ok () -> ()
  | Error m -> Alcotest.failf "valid spec rejected: %s" m);
  let bad axes = { rich_spec with Spec.axes } in
  let rejected s =
    match Spec.validate s with Ok () -> false | Error _ -> true
  in
  Alcotest.(check bool) "empty spec" true (rejected Spec.default);
  Alcotest.(check bool) "duplicate axis" true
    (rejected
       (bad
          [
            { Spec.param = "r1.r"; range = Spec.Values [ 1.0 ] };
            { Spec.param = "r1.r"; range = Spec.Values [ 2.0 ] };
          ]));
  Alcotest.(check bool) "inverted grid" true
    (rejected
       (bad [ { Spec.param = "r1.r"; range = Spec.Grid { lo = 2.0; hi = 1.0; n = 2 } } ]));
  Alcotest.(check bool) "bad samples" true
    (rejected { rich_spec with Spec.samples = 0 });
  Alcotest.(check bool) "non-positive nrmse budget" true
    (rejected { rich_spec with Spec.nrmse_budget = Some 0.0 })

let test_point_count () =
  (* 3 grid values x 8 samples + 1 corner. *)
  Alcotest.(check int) "count" 25 (Spec.point_count rich_spec);
  let grid_only =
    {
      Spec.default with
      Spec.axes =
        [
          { Spec.param = "a.r"; range = Spec.Grid { lo = 0.; hi = 1.; n = 4 } };
          { Spec.param = "b.r"; range = Spec.Values [ 1.; 2.; 3. ] };
        ];
    }
  in
  (* No Monte Carlo axis: samples is ignored. *)
  Alcotest.(check int) "grid product" 12
    (Spec.point_count { grid_only with Spec.samples = 100 })

(* Sampler *)

let test_sampler_deterministic () =
  let p1 = Sampler.points rich_spec and p2 = Sampler.points rich_spec in
  Alcotest.(check bool) "same spec, same points" true (p1 = p2);
  Alcotest.(check int) "length = point_count"
    (Spec.point_count rich_spec)
    (List.length p1);
  let p3 = Sampler.points { rich_spec with Spec.seed = 43 } in
  Alcotest.(check bool) "different seed, different draws" true (p1 <> p3);
  (* Grid coordinates are seed-independent. *)
  List.iter2
    (fun (a : Sampler.point) (b : Sampler.point) ->
      Alcotest.(check (float 0.0))
        "grid coordinate"
        (List.assoc "r1.r" a.Sampler.overrides)
        (List.assoc "r1.r" b.Sampler.overrides))
    p1 p3

let test_sampler_expansion () =
  let spec =
    {
      Spec.default with
      Spec.axes =
        [
          { Spec.param = "a.r"; range = Spec.Grid { lo = 0.0; hi = 1.0; n = 3 } };
          { Spec.param = "b.r"; range = Spec.Values [ 10.0; 20.0 ] };
        ];
      corners = [ { Spec.corner_name = "hot"; binds = [ ("a.r", 9.0) ] } ];
    }
  in
  let pts = Array.of_list (Sampler.points spec) in
  Alcotest.(check int) "6 grid + 1 corner" 7 (Array.length pts);
  (* First axis slowest, endpoints included. *)
  let coord i k = List.assoc k pts.(i).Sampler.overrides in
  Alcotest.(check (float 1e-12)) "a[0]" 0.0 (coord 0 "a.r");
  Alcotest.(check (float 1e-12)) "b[0]" 10.0 (coord 0 "b.r");
  Alcotest.(check (float 1e-12)) "b[1]" 20.0 (coord 1 "b.r");
  Alcotest.(check (float 1e-12)) "a[2]" 0.5 (coord 2 "a.r");
  Alcotest.(check (float 1e-12)) "a[5]" 1.0 (coord 5 "a.r");
  Alcotest.(check string) "corner label" "hot" pts.(6).Sampler.label;
  Array.iteri
    (fun i (p : Sampler.point) ->
      Alcotest.(check int) "index" i p.Sampler.index)
    pts;
  (* Monte Carlo draws stay inside the declared range. *)
  let mc =
    {
      Spec.default with
      Spec.samples = 200;
      seed = 7;
      axes =
        [ { Spec.param = "a.r"; range = Spec.Uniform { lo = 2.0; hi = 3.0 } } ];
    }
  in
  List.iter
    (fun (p : Sampler.point) ->
      let v = List.assoc "a.r" p.Sampler.overrides in
      Alcotest.(check bool) "in range" true (v >= 2.0 && v < 3.0))
    (Sampler.points mc)

(* Pool *)

let test_pool_exactly_once () =
  let n = 1000 in
  let hits = Array.init n (fun _ -> Atomic.make 0) in
  let items = Array.init n (fun i -> i) in
  let results =
    Pool.run ~jobs:4
      (fun i ->
        Atomic.incr hits.(i);
        i * i)
      items
  in
  Alcotest.(check int) "all results" n (Array.length results);
  Array.iteri
    (fun i r -> Alcotest.(check int) "in order" (i * i) r)
    results;
  Array.iteri
    (fun i c -> Alcotest.(check int) (Printf.sprintf "hit %d" i) 1 (Atomic.get c))
    hits

let test_pool_single_job_inline () =
  let results = Pool.run ~jobs:1 (fun i -> i + 1) (Array.init 10 Fun.id) in
  Alcotest.(check (array int)) "inline" (Array.init 10 (fun i -> i + 1)) results

let test_pool_exception () =
  (match Pool.run ~jobs:4 (fun i -> if i = 17 then failwith "boom" else i)
           (Array.init 100 Fun.id)
   with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure m -> Alcotest.(check string) "message" "boom" m);
  match Pool.run ~jobs:0 Fun.id [| 1 |] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_pool_counters_under_contention () =
  (* Satellite check: Obs counters accumulate exactly under domain
     contention (they are single atomic RMWs). *)
  let c = Obs.Counter.make "test_sweep_contention_total" in
  let before = Obs.Counter.value c in
  let _ =
    Pool.run ~jobs:4
      (fun _ ->
        for _ = 1 to 1000 do
          Obs.Counter.incr c
        done)
      (Array.make 8 ())
  in
  Alcotest.(check int) "8000 increments" (before + 8000) (Obs.Counter.value c)

(* Stats *)

let test_stats_fixture () =
  let xs = Array.init 10 (fun i -> float_of_int (i + 1)) in
  match Stats.of_array xs with
  | None -> Alcotest.fail "stats of non-empty array"
  | Some s ->
      Alcotest.(check int) "n" 10 s.Stats.n;
      Alcotest.(check (float 1e-12)) "min" 1.0 s.Stats.min;
      Alcotest.(check (float 1e-12)) "max" 10.0 s.Stats.max;
      Alcotest.(check (float 1e-12)) "mean" 5.5 s.Stats.mean;
      Alcotest.(check (float 1e-12)) "stddev" (sqrt 8.25) s.Stats.stddev;
      Alcotest.(check (float 1e-12)) "p50" 5.5 s.Stats.p50;
      Alcotest.(check (float 1e-12)) "p95" 9.55 s.Stats.p95

let test_stats_edge () =
  Alcotest.(check bool) "empty" true (Stats.of_array [||] = None);
  (match Stats.of_array [| 3.0 |] with
  | Some s ->
      Alcotest.(check (float 0.0)) "single p95" 3.0 s.Stats.p95;
      Alcotest.(check (float 0.0)) "single stddev" 0.0 s.Stats.stddev
  | None -> Alcotest.fail "singleton");
  match Stats.quantile [| 1.0; 2.0 |] 1.5 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* Abstraction cache *)

let dt = 1e-6

let probed_testcase label =
  let tc = Option.get (Circuits.by_name label) in
  (tc, Flow.insert_probes tc.Circuits.circuit ~outputs:[ tc.Circuits.output ])

let test_cache_replay_matches_full () =
  List.iter
    (fun (label, overrides) ->
      let tc, probed = probed_testcase label in
      let cache =
        Abscache.build ~name:"replay" ~dt probed
          ~outputs:[ tc.Circuits.output ]
      in
      let circuit = Circuit.override probed overrides in
      let full =
        (Flow.abstract_circuit ~name:"replay" circuit
           ~outputs:[ tc.Circuits.output ] ~dt)
          .Flow.program
      in
      match Abscache.rebind cache circuit with
      | None -> Alcotest.failf "%s: replay failed" label
      | Some replayed ->
          Alcotest.(check bool)
            (label ^ ": replayed program = full abstraction")
            true (replayed = full))
    [
      ("RC1", [ ("r1.r", 7.5e3); ("c1.c", 10e-9) ]);
      ("RC4", [ ("r3.r", 1e3) ]);
      ("RLC", [ ("l1.l", 4.7e-3); ("c1.c", 2.2e-6) ]);
      (* PWL device: exercises the direct-definition fallback. *)
      ("RECT", [ ("d1.g_on", 2e-2); ("d1.g_off", 5e-7) ]);
      ("2IN", [ ("r2.r", 12e3) ]);
    ]

let test_cache_rejects_other_structure () =
  let _, probed = probed_testcase "RC1" in
  let cache =
    Abscache.build ~name:"k" ~dt probed
      ~outputs:[ Expr.potential "out" "gnd" ]
  in
  Alcotest.(check bool) "definitions recorded" true
    (Abscache.definitions cache > 0);
  let _, other = probed_testcase "RC4" in
  Alcotest.(check bool) "different structure" true
    (Abscache.rebind cache other = None)

(* Runner + report *)

let small_spec jobs =
  {
    Spec.default with
    Spec.name = "t";
    circuit = Some "RECT";
    t_stop = Some 1e-3;
    samples = 6;
    seed = 5;
    jobs = Some jobs;
    axes =
      [
        { Spec.param = "d1.g_on"; range = Spec.Uniform { lo = 5e-3; hi = 2e-2 } };
      ];
    corners =
      [ { Spec.corner_name = "nom"; binds = [ ("d1.g_on", 1e-2) ] } ];
  }

let run_small jobs =
  let spec = small_spec jobs in
  let tc = Option.get (Circuits.by_name "RECT") in
  Runner.run spec tc

let point_values (s : Runner.summary) =
  Array.map
    (fun (r : Runner.point_result) ->
      (r.Runner.point.Sampler.overrides, r.Runner.out_final, r.Runner.out_rms,
       r.Runner.nrmse, r.Runner.cached))
    s.Runner.points

let test_runner_jobs_invariant () =
  let s1 = run_small 1 and s2 = run_small 2 in
  Alcotest.(check int) "7 points" 7 (Array.length s1.Runner.points);
  Alcotest.(check bool) "values identical across jobs" true
    (point_values s1 = point_values s2);
  Alcotest.(check int) "all points replayed from the cache" 7
    s1.Runner.cache_hits;
  Alcotest.(check int) "no full abstractions" 0 s1.Runner.cache_misses;
  match s1.Runner.nrmse_stats with
  | None -> Alcotest.fail "reference on, nrmse expected"
  | Some st ->
      (* The region-switching model lags the Newton reference by one
         sample around each diode transition; anything beyond ~1e-2
         would mean a genuinely wrong waveform. *)
      Alcotest.(check bool) "nrmse small" true (st.Stats.max < 1e-2)

let test_report_outputs () =
  let s = run_small 1 in
  let json = Report.json s in
  Alcotest.(check bool) "json object" true
    (String.length json > 2 && json.[0] = '{'
    && json.[String.length json - 2] = '}');
  let count_char c str =
    String.fold_left (fun n x -> if x = c then n + 1 else n) 0 str
  in
  Alcotest.(check int) "balanced braces" (count_char '{' json)
    (count_char '}' json);
  Alcotest.(check int) "balanced brackets" (count_char '[' json)
    (count_char ']' json);
  let csv = Report.csv s in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' csv)
  in
  Alcotest.(check int) "header + one row per point" 8 (List.length lines);
  let cols l = List.length (String.split_on_char ',' l) in
  let width = cols (List.hd lines) in
  List.iter
    (fun l -> Alcotest.(check int) "rectangular csv" width (cols l))
    lines

(* Health verdicts *)

let test_healthy_points_reported_ok () =
  let s = run_small 1 in
  Alcotest.(check int) "no unhealthy point" 0 s.Runner.unhealthy;
  Array.iter
    (fun (r : Runner.point_result) ->
      Alcotest.(check bool) "verdict healthy" true
        r.Runner.health.Health.v_healthy)
    s.Runner.points

let test_nan_point_flagged () =
  (* A deliberately poisoned point: r1.r = NaN propagates through the
     replayed program's coefficients into the output trace, and the
     watchdog must name the offending signal and instant while the
     companion point stays healthy. *)
  let spec =
    {
      Spec.default with
      Spec.name = "nan_inject";
      circuit = Some "RECT";
      t_stop = Some 2e-4;
      reference = false;
      axes = [ { Spec.param = "r1.r"; range = Spec.Values [ 1e3; nan ] } ];
    }
  in
  let tc = Option.get (Circuits.by_name "RECT") in
  let s = Runner.run spec tc in
  Alcotest.(check int) "two points" 2 (Array.length s.Runner.points);
  Alcotest.(check int) "one unhealthy" 1 s.Runner.unhealthy;
  let good = s.Runner.points.(0) and bad = s.Runner.points.(1) in
  Alcotest.(check bool) "nominal point healthy" true
    good.Runner.health.Health.v_healthy;
  Alcotest.(check bool) "poisoned point flagged" false
    bad.Runner.health.Health.v_healthy;
  (match bad.Runner.health.Health.v_issues with
  | [ { Health.kind = Health.Nan_or_inf; time; value } ] ->
      Alcotest.(check string) "offending signal" "V(out,gnd)"
        bad.Runner.health.Health.v_signal;
      Alcotest.(check bool) "timestamp inside the run" true
        (time >= 0.0 && time <= 2e-4);
      Alcotest.(check bool) "offending value is non-finite" false
        (Float.is_finite value)
  | issues ->
      Alcotest.failf "expected exactly the nan issue, got %d" (List.length issues));
  (* The verdict reaches both report formats. *)
  let json = Report.json s in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "json summary counts it" true
    (contains json "\"unhealthy\": 1");
  Alcotest.(check bool) "json verdict object" true
    (contains json "\"health\":{\"signal\":\"V(out,gnd)\"");
  Alcotest.(check bool) "json ok for the good point" true
    (contains json "\"health\":\"ok\"");
  let csv = Report.csv s in
  Alcotest.(check bool) "csv health column" true
    (contains csv ",health,");
  Alcotest.(check bool) "csv flags the nan" true (contains csv "nan@")

let test_fast_fail_diagnoses_once () =
  (* A structurally defective model must be rejected at sweep setup —
     one located finding — not rediscovered by every scenario point.
     The points counter proves no point was ever expanded or run. *)
  let c = Circuit.create () in
  Circuit.add_vsource c ~name:"v1" ~pos:"a" ~neg:"gnd" (Component.Dc 1.0);
  Circuit.add_vsource c ~name:"v2" ~pos:"a" ~neg:"gnd" (Component.Dc 2.0);
  let tc =
    {
      Circuits.label = "BAD";
      circuit = c;
      output = Expr.potential "a" "gnd";
      stimuli = [];
    }
  in
  let spec =
    {
      Spec.default with
      Spec.name = "bad_sweep";
      t_stop = Some 1e-4;
      axes = [ { Spec.param = "v1.dc"; range = Spec.Values [ 1.0; 2.0; 3.0 ] } ];
    }
  in
  let points = Obs.Counter.make "amsvp_sweep_points_total" in
  let before = Obs.Counter.value points in
  (match Runner.run spec tc with
  | _ -> Alcotest.fail "expected Diag.Rejected"
  | exception Diag.Rejected f ->
      Alcotest.(check string) "voltage-source loop code" "AMS022" f.Diag.code);
  Alcotest.(check int) "no point executed" before (Obs.Counter.value points)

let test_nrmse_budget_watchdog () =
  (* With the reference on and a budget tighter than the actual error,
     every point trips the nrmse-budget watchdog; with a loose budget,
     none does. *)
  let base = small_spec 1 in
  let tc = Option.get (Circuits.by_name "RECT") in
  let run budget =
    Runner.run { base with Spec.nrmse_budget = Some budget } tc
  in
  let tight = run 1e-9 in
  Alcotest.(check int) "tight budget flags all points"
    (Array.length tight.Runner.points)
    tight.Runner.unhealthy;
  Array.iter
    (fun (r : Runner.point_result) ->
      match
        List.find_opt
          (fun (i : Health.issue) -> i.Health.kind = Health.Nrmse_budget)
          r.Runner.health.Health.v_issues
      with
      | Some _ -> ()
      | None -> Alcotest.fail "expected an nrmse-budget issue")
    tight.Runner.points;
  let loose = run 0.5 in
  Alcotest.(check int) "loose budget is quiet" 0 loose.Runner.unhealthy

(* Static pruning: on an RC low-pass swept across a resistance decade,
   a 0.5 V amplitude limit is provably breached at the low-R end. The
   pruned run must (a) skip exactly the points the unpruned run flags
   amplitude-unhealthy — the proof is MUST, never a guess — and (b)
   leave every surviving point's result byte-identical. *)
let prune_spec =
  {
    Spec.default with
    Spec.name = "rc_prune";
    circuit = Some "RC1";
    stimulus = Some (Spec.Sine { freq = 2e3; amplitude = 1.0 });
    t_stop = Some 2e-3;
    reference = false;
    amplitude_limit = Some 0.5;
    axes =
      [
        { Spec.param = "r1.r"; range = Spec.Grid { lo = 1e3; hi = 1e6; n = 6 } };
      ];
  }

let test_prune_static_sound_and_deterministic () =
  let tc = Option.get (Circuits.by_name "RC1") in
  let plain = Runner.run prune_spec tc in
  let pruned = Runner.run ~prune:true prune_spec tc in
  Alcotest.(check int) "same expansion" (Array.length plain.Runner.points)
    (Array.length pruned.Runner.points);
  Alcotest.(check int) "nothing pruned without the flag" 0
    plain.Runner.pruned;
  Alcotest.(check bool) "something was pruned" true (pruned.Runner.pruned > 0);
  let is_pruned (r : Runner.point_result) =
    List.exists
      (fun (i : Health.issue) -> i.Health.kind = Health.Pruned)
      r.Runner.health.Health.v_issues
  in
  let amplitude_unhealthy (r : Runner.point_result) =
    List.exists
      (fun (i : Health.issue) -> i.Health.kind = Health.Amplitude)
      r.Runner.health.Health.v_issues
  in
  Array.iteri
    (fun i (r : Runner.point_result) ->
      let full = plain.Runner.points.(i) in
      if is_pruned r then begin
        (* soundness: the simulated run really trips the watchdog *)
        Alcotest.(check bool)
          (Printf.sprintf "pruned point %d is truly unhealthy" i)
          true
          (amplitude_unhealthy full);
        Alcotest.(check bool) "pruned verdict is distinct" false
          (amplitude_unhealthy r)
      end
      else begin
        (* survivors: value results byte-identical to the plain run *)
        Alcotest.(check bool)
          (Printf.sprintf "survivor %d 's values untouched" i)
          true
          (Float.equal full.Runner.out_final r.Runner.out_final
          && Float.equal full.Runner.out_rms r.Runner.out_rms
          && full.Runner.health.Health.v_healthy
             = r.Runner.health.Health.v_healthy)
      end)
    pruned.Runner.points;
  (* summary accounting: pruned points are a subset of unhealthy *)
  Alcotest.(check bool) "pruned counted unhealthy" true
    (pruned.Runner.unhealthy >= pruned.Runner.pruned);
  (* determinism: pruning twice gives the identical report *)
  let again = Runner.run ~prune:true prune_spec tc in
  Alcotest.(check string) "prune is deterministic"
    (Report.json ~timings:false pruned)
    (Report.json ~timings:false again);
  (* the report surfaces the verdict and the counter *)
  let json = Report.json ~timings:false pruned in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "json counts pruned" true
    (contains json (Printf.sprintf "\"pruned\": %d" pruned.Runner.pruned));
  Alcotest.(check bool) "json carries the verdict" true
    (contains json "\"kind\":\"pruned\"");
  Alcotest.(check bool) "csv carries the verdict" true
    (contains (Report.csv ~timings:false pruned) "pruned@")

let () =
  Alcotest.run "sweep"
    [
      ( "spec",
        [
          Alcotest.test_case "round-trip" `Quick test_spec_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_spec_parse_errors;
          Alcotest.test_case "validate" `Quick test_spec_validate;
          Alcotest.test_case "point count" `Quick test_point_count;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "deterministic" `Quick test_sampler_deterministic;
          Alcotest.test_case "expansion" `Quick test_sampler_expansion;
        ] );
      ( "pool",
        [
          Alcotest.test_case "exactly once" `Quick test_pool_exactly_once;
          Alcotest.test_case "single job inline" `Quick
            test_pool_single_job_inline;
          Alcotest.test_case "exception" `Quick test_pool_exception;
          Alcotest.test_case "counters under contention" `Quick
            test_pool_counters_under_contention;
        ] );
      ( "stats",
        [
          Alcotest.test_case "fixture" `Quick test_stats_fixture;
          Alcotest.test_case "edge cases" `Quick test_stats_edge;
        ] );
      ( "cache",
        [
          Alcotest.test_case "replay matches full" `Quick
            test_cache_replay_matches_full;
          Alcotest.test_case "rejects other structure" `Quick
            test_cache_rejects_other_structure;
        ] );
      ( "runner",
        [
          Alcotest.test_case "jobs invariant" `Quick test_runner_jobs_invariant;
          Alcotest.test_case "report outputs" `Quick test_report_outputs;
          Alcotest.test_case "fast-fail on bad model" `Quick
            test_fast_fail_diagnoses_once;
          Alcotest.test_case "static pruning sound and deterministic" `Quick
            test_prune_static_sound_and_deterministic;
        ] );
      ( "health",
        [
          Alcotest.test_case "healthy points ok" `Quick
            test_healthy_points_reported_ok;
          Alcotest.test_case "nan point flagged" `Quick test_nan_point_flagged;
          Alcotest.test_case "nrmse budget watchdog" `Quick
            test_nrmse_budget_watchdog;
        ] );
    ]
