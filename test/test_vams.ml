(* Tests for the Verilog-AMS front-end: lexer, parser, elaborator,
   device recognition and the two conversion routes. *)

module Lexer = Amsvp_vams.Lexer
module Parser = Amsvp_vams.Parser
module Ast = Amsvp_vams.Ast
module Elaborate = Amsvp_vams.Elaborate
module Sources = Amsvp_vams.Sources
module Circuit = Amsvp_netlist.Circuit
module Component = Amsvp_netlist.Component
module Circuits = Amsvp_netlist.Circuits
module Engine = Amsvp_mna.Engine
module Flow = Amsvp_core.Flow
module Sfprogram = Amsvp_sf.Sfprogram
module Metrics = Amsvp_util.Metrics
module Trace = Amsvp_util.Trace
module Stimulus = Amsvp_util.Stimulus

(* Lexer *)

let tokens src =
  List.filter_map
    (fun p -> match p.Lexer.token with Lexer.Eof -> None | t -> Some t)
    (Lexer.tokenize src)

let test_scale_factors () =
  let checkv s expected =
    match tokens s with
    | [ Lexer.Number f ] -> Alcotest.(check (float 1e-20)) s expected f
    | _ -> Alcotest.failf "expected one number for %s" s
  in
  checkv "5K" 5000.0;
  checkv "5k" 5000.0;
  checkv "25n" 25e-9;
  checkv "1.6K" 1600.0;
  checkv "40p" 40e-12;
  checkv "3M" 3e6;
  checkv "2.5" 2.5;
  checkv "1e-3" 1e-3;
  checkv "1.5e3" 1500.0

let test_suffix_vs_identifier () =
  (* "5kx" is the number 5 followed by identifier kx, not 5000·x. *)
  match tokens "5kx" with
  | [ Lexer.Number f; Lexer.Ident "kx" ] ->
      Alcotest.(check (float 0.0)) "no scale factor" 5.0 f
  | _ -> Alcotest.fail "expected number then identifier"

let test_comments_and_directives () =
  let src = "// line\n/* block\nspanning */ `include \"x.vams\"\nfoo" in
  match tokens src with
  | [ Lexer.Ident "foo" ] -> ()
  | _ -> Alcotest.fail "comments and directives should be skipped"

let test_contribution_operator () =
  match tokens "V(a) <+ 1;" with
  | [ Lexer.Ident "V"; Lexer.Punct "("; Lexer.Ident "a"; Lexer.Punct ")";
      Lexer.Punct "<+"; Lexer.Number 1.0; Lexer.Punct ";" ] ->
      ()
  | _ -> Alcotest.fail "expected <+ token"

let test_lex_error_position () =
  try
    ignore (Lexer.tokenize "a\n  @");
    Alcotest.fail "expected lex error"
  with Lexer.Lex_error (_, line, col) ->
    Alcotest.(check int) "line" 2 line;
    Alcotest.(check int) "column" 3 col

(* Parser *)

let test_parse_module_structure () =
  let design = Parser.parse Sources.primitives in
  Alcotest.(check int) "four primitives" 4 (List.length design);
  match Ast.find_module design "resistor" with
  | None -> Alcotest.fail "resistor module"
  | Some m ->
      Alcotest.(check (list string)) "ports" [ "p"; "n" ] m.Ast.ports;
      Alcotest.(check bool) "has analog item" true
        (List.exists
           (fun it ->
             match it.Ast.idesc with Ast.Analog _ -> true | _ -> false)
           m.Ast.items)

let test_parse_expression_precedence () =
  let e = Parser.parse_expr_string "1 + 2 * 3" in
  match e.Ast.edesc with
  | Ast.Binop
      ( Ast.Add,
        { Ast.edesc = Ast.Number 1.0; _ },
        { Ast.edesc = Ast.Binop (Ast.Mul, _, _); _ } ) ->
      ()
  | _ -> Alcotest.failf "precedence broken: %s" (Format.asprintf "%a" Ast.pp_expr e)

let test_parse_ternary () =
  let e = Parser.parse_expr_string "V(a) > 0 ? 1 : -1" in
  match e.Ast.edesc with
  | Ast.Ternary
      ( { Ast.edesc = Ast.Binop (Ast.Gt, _, _); _ },
        { Ast.edesc = Ast.Number 1.0; _ },
        _ ) ->
      ()
  | _ -> Alcotest.fail "ternary shape"

let test_spans_recorded () =
  (* "V(a) <+ r * I(a);" at line 5 of the resistor primitive: the
     contribution's span must point into the analog block. *)
  let design = Parser.parse ~file:"prim.vams" Sources.primitives in
  match Ast.find_module design "resistor" with
  | None -> Alcotest.fail "resistor module"
  | Some m ->
      Alcotest.(check string) "module file" "prim.vams"
        m.Ast.mspan.Amsvp_diag.Diag.file;
      let analog_spans =
        List.concat_map
          (fun it ->
            match it.Ast.idesc with
            | Ast.Analog stmts -> List.map (fun s -> s.Ast.sspan) stmts
            | _ -> [])
          m.Ast.items
      in
      Alcotest.(check bool) "has contribution span" true
        (List.exists
           (fun (s : Amsvp_diag.Diag.span) ->
             s.Amsvp_diag.Diag.file = "prim.vams" && s.Amsvp_diag.Diag.line > 1)
           analog_spans)

let test_parse_error_reported () =
  try
    ignore (Parser.parse "module m(a; endmodule");
    Alcotest.fail "expected parse error"
  with Parser.Parse_error (_, _, _) -> ()

(* Elaboration *)

let test_flatten_rc3 () =
  let design = Parser.parse (Sources.rc_ladder 3) in
  let flat = Elaborate.flatten design ~top:"rc3" in
  Alcotest.(check int) "six branch contributions" 6
    (List.length flat.Elaborate.contributions);
  Alcotest.(check (list string)) "input ports" [ "in" ] flat.Elaborate.input_ports;
  Alcotest.(check bool) "conservative" true
    (Elaborate.classify flat = `Conservative)

let test_to_circuit_rc3 () =
  let design = Parser.parse (Sources.rc_ladder 3) in
  let flat = Elaborate.flatten design ~top:"rc3" in
  let circuit = Elaborate.to_circuit flat in
  (* 3 R + 3 C + the implicit input driver. *)
  Alcotest.(check int) "devices" 7 (Circuit.device_count circuit);
  Alcotest.(check (list string)) "input signals" [ "in" ]
    (Circuit.input_signals circuit)

let test_parameter_override () =
  let src =
    Sources.primitives
    ^ {|
module top(in);
  input electrical in;
  resistor #(.r(42)) rx (.p(in), .n(gnd));
endmodule
|}
  in
  let flat = Elaborate.flatten (Parser.parse src) ~top:"top" in
  let circuit = Elaborate.to_circuit flat in
  let r =
    List.find
      (fun (d : Component.t) ->
        match d.Component.kind with Component.Resistor _ -> true | _ -> false)
      (Circuit.devices circuit)
  in
  (match r.Component.kind with
  | Component.Resistor v -> Alcotest.(check (float 0.0)) "override" 42.0 v
  | _ -> assert false)

let test_positional_connections () =
  let src =
    Sources.primitives
    ^ {|
module top(in);
  input electrical in;
  resistor rx (in, gnd);
endmodule
|}
  in
  let flat = Elaborate.flatten (Parser.parse src) ~top:"top" in
  let circuit = Elaborate.to_circuit flat in
  let rx =
    List.find (fun (d : Component.t) -> d.Component.name <> "__drv_in")
      (Circuit.devices circuit)
  in
  Alcotest.(check string) "pos" "in" rx.Component.pos;
  Alcotest.(check string) "neg" "gnd" rx.Component.neg

let test_vcvs_recognition () =
  let design = Parser.parse Sources.two_input in
  let flat = Elaborate.flatten design ~top:"two_in" in
  let circuit = Elaborate.to_circuit flat in
  let vcvs =
    List.filter
      (fun (d : Component.t) ->
        match d.Component.kind with Component.Vcvs _ -> true | _ -> false)
      (Circuit.devices circuit)
  in
  match vcvs with
  | [ { Component.kind = Component.Vcvs { gain; ctrl_pos; ctrl_neg }; _ } ] ->
      Alcotest.(check (float 0.0)) "gain" (-100_000.0) gain;
      (* V(inp) - V(inn) with inp = gnd: control pair is (x, gnd)
         with the negative gain folded in, or (gnd, x) — accept the
         canonical result of recognition. *)
      Alcotest.(check bool) "controls mention x" true
        (ctrl_pos = "x" || ctrl_neg = "x")
  | _ -> Alcotest.fail "expected exactly one VCVS"

let test_named_branch () =
  let src =
    {|
module top(in);
  input electrical in;
  electrical a;
  branch (a, gnd) load;
  analog begin
    V(load) <+ 100 * I(load);
    I(in, a) <+ 0.5 * V(in, a);
  end
endmodule
|}
  in
  let flat = Elaborate.flatten (Parser.parse src) ~top:"top" in
  let circuit = Elaborate.to_circuit flat in
  Alcotest.(check int) "three devices (incl. driver)" 3
    (Circuit.device_count circuit)

let test_ground_alias () =
  let src =
    {|
module top(in);
  input electrical in;
  ground vss;
  resistor rx (.p(in), .n(vss));
endmodule
|}
    |> fun body -> Sources.primitives ^ body
  in
  let flat = Elaborate.flatten (Parser.parse src) ~top:"top" in
  let circuit = Elaborate.to_circuit flat in
  let rx =
    List.find (fun (d : Component.t) -> d.Component.name <> "__drv_in")
      (Circuit.devices circuit)
  in
  Alcotest.(check string) "vss is ground" "gnd" rx.Component.neg

let expect_elab_error name f =
  Alcotest.(check bool) name true
    (try
       ignore (f ());
       false
     with Elaborate.Elab_error _ -> true)

let test_unknown_module () =
  expect_elab_error "unknown module" (fun () ->
      Elaborate.flatten
        (Parser.parse "module top(a); input electrical a; widget w (.p(a)); endmodule")
        ~top:"top")

let test_unknown_port () =
  let src =
    Sources.primitives
    ^ "module top(a); input electrical a; resistor r1 (.q(a)); endmodule"
  in
  expect_elab_error "unknown port" (fun () ->
      Elaborate.flatten (Parser.parse src) ~top:"top")

let test_pwl_recognition () =
  let src =
    {|
module top(a);
  input electrical a;
  electrical k;
  analog begin
    V(a, k) <+ 1000 * I(a, k);
    I(k, gnd) <+ (V(k, gnd) >= 0.2) ? 0.01 * V(k, gnd) : 1e-9 * V(k, gnd);
  end
endmodule
|}
  in
  let flat = Elaborate.flatten (Parser.parse src) ~top:"top" in
  let circuit = Elaborate.to_circuit flat in
  let pwl =
    List.filter
      (fun (d : Component.t) ->
        match d.Component.kind with
        | Component.Pwl_conductance _ -> true
        | _ -> false)
      (Circuit.devices circuit)
  in
  match pwl with
  | [ { Component.kind = Component.Pwl_conductance { g_on; g_off; threshold }; _ } ] ->
      Alcotest.(check (float 0.0)) "g_on" 0.01 g_on;
      Alcotest.(check (float 0.0)) "g_off" 1e-9 g_off;
      Alcotest.(check (float 0.0)) "threshold" 0.2 threshold
  | _ -> Alcotest.fail "expected one PWL device"

let test_nonlinear_device_rejected () =
  let src =
    {|
module top(a);
  input electrical a;
  analog I(a, gnd) <+ V(a, gnd) * V(a, gnd);
endmodule
|}
  in
  expect_elab_error "nonlinear constitutive equation" (fun () ->
      let flat = Elaborate.flatten (Parser.parse src) ~top:"top" in
      Elaborate.to_circuit flat)

(* Conversion routes *)

let test_procedural_variables () =
  (* Fig. 2's signal-flow block style: intermediate real variables. *)
  let src =
    {|
module gainstage(in, out);
  input electrical in;
  output electrical out;
  parameter real g = 2.5;
  real vd, vo;
  analog begin
    vd = V(in);
    vo = g * vd + 1.0;
    V(out) <+ vo;
  end
endmodule
|}
  in
  let rep =
    Elaborate.parse_and_abstract src ~top:"gainstage"
      ~outputs:[ Expr.potential "out" "gnd" ]
      ~dt:1e-6
  in
  let runner = Sfprogram.Runner.create rep.Flow.program in
  let tr =
    Sfprogram.Runner.run runner ~stimuli:[| Stimulus.constant 2.0 |]
      ~t_stop:1e-5 ()
  in
  Alcotest.(check (float 1e-9)) "2.5*2+1" 6.0 (Trace.last_value tr)

let test_conditional_assignment () =
  (* A variable assigned under an if keeps its previous value in the
     other region (symbolic execution folds the guard in). *)
  let src =
    {|
module clampstage(in, out);
  input electrical in;
  output electrical out;
  real x;
  analog begin
    x = V(in);
    if (V(in) > 1.0)
      x = 1.0;
    V(out) <+ x;
  end
endmodule
|}
  in
  let rep =
    Elaborate.parse_and_abstract src ~top:"clampstage"
      ~outputs:[ Expr.potential "out" "gnd" ]
      ~dt:1e-6
  in
  let run level =
    let runner = Sfprogram.Runner.create rep.Flow.program in
    let tr =
      Sfprogram.Runner.run runner ~stimuli:[| Stimulus.constant level |]
        ~t_stop:1e-5 ()
    in
    Trace.last_value tr
  in
  Alcotest.(check (float 1e-9)) "below threshold passes" 0.5 (run 0.5);
  Alcotest.(check (float 1e-9)) "above threshold clamps" 1.0 (run 3.0)

let test_signal_flow_classification () =
  let flat =
    Elaborate.flatten (Parser.parse Sources.signal_flow_filter) ~top:"sf_lowpass"
  in
  Alcotest.(check bool) "signal flow" true (Elaborate.classify flat = `Signal_flow)

let test_signal_flow_conversion_accuracy () =
  (* The converted sf_lowpass must match the analytic first-order
     response. *)
  let dt = 1e-6 in
  let rep =
    Elaborate.parse_and_abstract Sources.signal_flow_filter ~top:"sf_lowpass"
      ~outputs:[ Expr.potential "out" "gnd" ]
      ~dt
  in
  let runner = Sfprogram.Runner.create rep.Flow.program in
  let tr =
    Sfprogram.Runner.run runner ~stimuli:[| Stimulus.constant 1.0 |]
      ~t_stop:1e-3 ()
  in
  let tau = 125e-6 in
  let expected = 1.0 -. exp (-.1e-3 /. tau) in
  Alcotest.(check (float 1e-2)) "step response" expected (Trace.last_value tr)

let test_parse_and_abstract_matches_programmatic () =
  let dt = 50e-9 and t_stop = 1e-3 in
  List.iter
    (fun (label, src) ->
      let tc = Option.get (Circuits.by_name label) in
      let rep =
        Elaborate.parse_and_abstract src ~top:(Sources.top_name_of label)
          ~outputs:[ Expr.potential "out" "gnd" ]
          ~dt
      in
      let runner = Sfprogram.Runner.create rep.Flow.program in
      let stims =
        Array.of_list
          (List.map
             (fun n -> List.assoc n tc.Circuits.stimuli)
             rep.Flow.program.Sfprogram.inputs)
      in
      let mine = Sfprogram.Runner.run runner ~stimuli:stims ~t_stop () in
      let reference =
        Engine.run_testcase_spice ~substeps:1 ~iterations:1 tc ~dt ~t_stop
      in
      let err =
        Metrics.nrmse_traces ~reference:reference.Engine.trace mine ~t0:0.0
          ~dt:(dt *. 20.0) ~n:999
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s NRMSE=%g" label err)
        true (err < 1e-10))
    [
      ("RC1", Sources.rc_ladder 1);
      ("2IN", Sources.two_input);
      ("OA", Sources.opamp);
    ]

let test_active_filter_elaborates () =
  let rep =
    Elaborate.parse_and_abstract Sources.active_filter ~top:"active_filter"
      ~outputs:[ Expr.potential "out" "gnd" ]
      ~dt:50e-9
  in
  Alcotest.(check bool) "cone nonempty" true (rep.Flow.definitions > 0)

(* Properties *)

let prop_rcn_sources_elaborate =
  QCheck.Test.make ~name:"generated RCn sources elaborate to 2n+1 devices"
    ~count:10
    QCheck.(int_range 1 24)
    (fun n ->
      let flat =
        Elaborate.flatten (Parser.parse (Sources.rc_ladder n))
          ~top:(Printf.sprintf "rc%d" n)
      in
      let circuit = Elaborate.to_circuit flat in
      Circuit.device_count circuit = (2 * n) + 1)

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "vams"
    [
      ( "lexer",
        [
          Alcotest.test_case "scale factors" `Quick test_scale_factors;
          Alcotest.test_case "suffix vs identifier" `Quick
            test_suffix_vs_identifier;
          Alcotest.test_case "comments and directives" `Quick
            test_comments_and_directives;
          Alcotest.test_case "contribution operator" `Quick
            test_contribution_operator;
          Alcotest.test_case "error position" `Quick test_lex_error_position;
        ] );
      ( "parser",
        [
          Alcotest.test_case "module structure" `Quick test_parse_module_structure;
          Alcotest.test_case "precedence" `Quick test_parse_expression_precedence;
          Alcotest.test_case "ternary" `Quick test_parse_ternary;
          Alcotest.test_case "parse error" `Quick test_parse_error_reported;
          Alcotest.test_case "spans recorded" `Quick test_spans_recorded;
        ] );
      ( "elaboration",
        [
          Alcotest.test_case "flatten rc3" `Quick test_flatten_rc3;
          Alcotest.test_case "to_circuit rc3" `Quick test_to_circuit_rc3;
          Alcotest.test_case "parameter override" `Quick test_parameter_override;
          Alcotest.test_case "positional connections" `Quick
            test_positional_connections;
          Alcotest.test_case "VCVS recognition" `Quick test_vcvs_recognition;
          Alcotest.test_case "named branch" `Quick test_named_branch;
          Alcotest.test_case "ground alias" `Quick test_ground_alias;
          Alcotest.test_case "unknown module" `Quick test_unknown_module;
          Alcotest.test_case "unknown port" `Quick test_unknown_port;
          Alcotest.test_case "nonlinear device rejected" `Quick
            test_nonlinear_device_rejected;
          Alcotest.test_case "PWL recognition" `Quick test_pwl_recognition;
        ] );
      ( "conversion",
        [
          Alcotest.test_case "procedural variables" `Quick
            test_procedural_variables;
          Alcotest.test_case "conditional assignment" `Quick
            test_conditional_assignment;
          Alcotest.test_case "signal-flow classification" `Quick
            test_signal_flow_classification;
          Alcotest.test_case "signal-flow accuracy" `Quick
            test_signal_flow_conversion_accuracy;
          Alcotest.test_case "matches programmatic circuits" `Quick
            test_parse_and_abstract_matches_programmatic;
          Alcotest.test_case "active filter" `Quick test_active_filter_elaborates;
        ] );
      ("properties", qt [ prop_rcn_sources_elaborate ]);
    ]
