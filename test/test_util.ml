(* Tests for traces, metrics, stimuli and the VCD export. *)

module Trace = Amsvp_util.Trace
module Metrics = Amsvp_util.Metrics
module Stimulus = Amsvp_util.Stimulus
module Vcd = Amsvp_util.Vcd

let checkf tol = Alcotest.(check (float tol))

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  m = 0 || go 0

(* Trace *)

let test_trace_append_and_read () =
  let tr = Trace.create ~capacity:2 () in
  for i = 0 to 9 do
    Trace.add tr ~time:(float_of_int i) ~value:(float_of_int (i * i))
  done;
  Alcotest.(check int) "length" 10 (Trace.length tr);
  checkf 0.0 "time" 3.0 (Trace.time tr 3);
  checkf 0.0 "value" 9.0 (Trace.value tr 3);
  checkf 0.0 "last" 81.0 (Trace.last_value tr)

let test_trace_interpolation () =
  let tr = Trace.create () in
  Trace.add tr ~time:0.0 ~value:0.0;
  Trace.add tr ~time:1.0 ~value:10.0;
  Trace.add tr ~time:3.0 ~value:30.0;
  checkf 1e-12 "midpoint" 5.0 (Trace.sample_at tr 0.5);
  checkf 1e-12 "second segment" 20.0 (Trace.sample_at tr 2.0);
  checkf 1e-12 "before start clamps" 0.0 (Trace.sample_at tr (-1.0));
  checkf 1e-12 "after end clamps" 30.0 (Trace.sample_at tr 99.0)

let test_trace_resample () =
  let tr = Trace.of_fun (fun t -> 2.0 *. t) ~t0:0.0 ~dt:0.1 ~n:11 in
  let samples = Trace.resample tr ~t0:0.0 ~dt:0.25 ~n:4 in
  Alcotest.(check int) "count" 4 (Array.length samples);
  checkf 1e-12 "resampled" 1.0 samples.(2)

let test_trace_bounds_checked () =
  let tr = Trace.create () in
  Trace.add tr ~time:0.0 ~value:1.0;
  Alcotest.(check bool) "out of bounds" true
    (try
       ignore (Trace.value tr 1);
       false
     with Invalid_argument _ -> true);
  let empty = Trace.create () in
  Alcotest.(check bool) "empty last_value" true
    (try
       ignore (Trace.last_value empty);
       false
     with Invalid_argument _ -> true)

let test_trace_monotonic_time () =
  let tr = Trace.create () in
  Trace.add tr ~time:1.0 ~value:1.0;
  (* Equal timestamps are allowed (DE tracing records coincident samples). *)
  Trace.add tr ~time:1.0 ~value:2.0;
  Alcotest.check_raises "rewinding time rejected"
    (Invalid_argument "Trace.add: non-monotonic time") (fun () ->
      Trace.add tr ~time:0.5 ~value:3.0);
  Alcotest.(check int) "rejected sample not stored" 2 (Trace.length tr);
  Trace.add tr ~time:2.0 ~value:4.0;
  Alcotest.(check int) "usable after rejection" 3 (Trace.length tr)

(* Metrics *)

let test_metrics_rmse () =
  checkf 1e-12 "identical" 0.0 (Metrics.rmse [| 1.0; 2.0 |] [| 1.0; 2.0 |]);
  checkf 1e-12 "constant offset" 1.0 (Metrics.rmse [| 0.0; 0.0 |] [| 1.0; 1.0 |])

let test_metrics_nrmse () =
  let reference = [| 0.0; 1.0; 2.0 |] in
  checkf 1e-12 "normalised" 0.5
    (Metrics.nrmse ~reference [| 1.0; 2.0; 3.0 |]);
  checkf 1e-12 "zero error on flat reference" 0.0
    (Metrics.nrmse ~reference:[| 5.0; 5.0 |] [| 5.0; 5.0 |]);
  Alcotest.(check bool) "flat reference with error" true
    (Metrics.nrmse ~reference:[| 5.0; 5.0 |] [| 6.0; 6.0 |] = infinity)

let test_metrics_length_mismatch () =
  Alcotest.(check bool) "mismatch rejected" true
    (try
       ignore (Metrics.rmse [| 1.0 |] [| 1.0; 2.0 |]);
       false
     with Invalid_argument _ -> true)

(* Stimulus *)

let test_square_wave () =
  let f = Stimulus.square ~period:2.0 ~low:(-1.0) ~high:1.0 in
  checkf 0.0 "first half" 1.0 (f 0.5);
  checkf 0.0 "second half" (-1.0) (f 1.5);
  checkf 0.0 "periodic" 1.0 (f 2.5);
  checkf 0.0 "exact edge enters low" (-1.0) (f 1.0)

let test_pwl_waveform () =
  let f = Stimulus.pwl [ (0.0, 0.0); (1.0, 2.0); (3.0, 0.0) ] in
  checkf 1e-12 "ramp" 1.0 (f 0.5);
  checkf 1e-12 "peak" 2.0 (f 1.0);
  checkf 1e-12 "descent" 1.0 (f 2.0);
  checkf 1e-12 "extrapolation" 0.0 (f 10.0);
  Alcotest.(check bool) "unsorted rejected" true
    (try
       ignore (Stimulus.pwl [ (1.0, 0.0); (0.0, 1.0) ] 0.5);
       false
     with Invalid_argument _ -> true)

let test_step_and_sine () =
  let st = Stimulus.step ~at:1.0 ~low:0.0 ~high:5.0 in
  checkf 0.0 "before" 0.0 (st 0.99);
  checkf 0.0 "after" 5.0 (st 1.0);
  let s = Stimulus.sine ~freq:1.0 ~amplitude:2.0 ~offset:1.0 () in
  checkf 1e-12 "sine at 0" 1.0 (s 0.0);
  checkf 1e-9 "sine peak" 3.0 (s 0.25)

(* VCD *)

let test_vcd_structure () =
  let a = Trace.create () in
  Trace.add a ~time:0.0 ~value:0.0;
  Trace.add a ~time:1e-9 ~value:1.5;
  Trace.add a ~time:2e-9 ~value:1.5;
  (* unchanged: no dump *)
  Trace.add a ~time:3e-9 ~value:0.25;
  let b = Trace.create () in
  Trace.add b ~time:0.0 ~value:7.0;
  let doc = Vcd.to_string ~timescale_ps:1000 [ ("sig_a", a); ("sig_b", b) ] in
  Alcotest.(check bool) "header" true (contains doc "$timescale 1000 ps $end");
  Alcotest.(check bool) "var a" true (contains doc "$var real 64 ! sig_a $end");
  Alcotest.(check bool) "var b" true
    (contains doc "$var real 64 \" sig_b $end");
  Alcotest.(check bool) "time 1" true (contains doc "#1\nr1.5 !");
  Alcotest.(check bool) "change-only dump" false (contains doc "#2");
  Alcotest.(check bool) "time 3" true (contains doc "#3\nr0.25 !")

let test_vcd_validation () =
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (Vcd.to_string []);
       false
     with Invalid_argument _ -> true);
  let t = Trace.create () in
  Trace.add t ~time:0.0 ~value:0.0;
  Alcotest.(check bool) "duplicate names rejected" true
    (try
       ignore (Vcd.to_string [ ("x", t); ("x", t) ]);
       false
     with Invalid_argument _ -> true)

(* Properties *)

let prop_sample_at_is_monotone_on_monotone_traces =
  QCheck.Test.make ~name:"interpolation preserves monotonicity" ~count:100
    QCheck.(list_of_size (Gen.int_range 2 20) (float_range 0.0 10.0))
    (fun increments ->
      let tr = Trace.create () in
      let t = ref 0.0 and v = ref 0.0 in
      List.iter
        (fun dv ->
          t := !t +. 1.0;
          v := !v +. dv;
          Trace.add tr ~time:!t ~value:!v)
        increments;
      let ok = ref true in
      let prev = ref neg_infinity in
      for i = 0 to 50 do
        let s = Trace.sample_at tr (float_of_int i *. !t /. 50.0) in
        if s < !prev -. 1e-9 then ok := false;
        prev := s
      done;
      !ok)

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "util"
    [
      ( "trace",
        [
          Alcotest.test_case "append and read" `Quick test_trace_append_and_read;
          Alcotest.test_case "interpolation" `Quick test_trace_interpolation;
          Alcotest.test_case "resample" `Quick test_trace_resample;
          Alcotest.test_case "bounds" `Quick test_trace_bounds_checked;
          Alcotest.test_case "monotonic time" `Quick test_trace_monotonic_time;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "rmse" `Quick test_metrics_rmse;
          Alcotest.test_case "nrmse" `Quick test_metrics_nrmse;
          Alcotest.test_case "length mismatch" `Quick test_metrics_length_mismatch;
        ] );
      ( "stimulus",
        [
          Alcotest.test_case "square" `Quick test_square_wave;
          Alcotest.test_case "pwl" `Quick test_pwl_waveform;
          Alcotest.test_case "step and sine" `Quick test_step_and_sine;
        ] );
      ( "vcd",
        [
          Alcotest.test_case "structure" `Quick test_vcd_structure;
          Alcotest.test_case "validation" `Quick test_vcd_validation;
        ] );
      ("properties", qt [ prop_sample_at_is_monotone_on_monotone_traces ]);
    ]
