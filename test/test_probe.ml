(* Tests for the observability layer: waveform taps (ring buffers,
   decimation, VCD/CSV export) and the online health monitors, plus the
   generic observe hook on the runners they attach to. *)

module Probe = Amsvp_probe.Probe
module Health = Amsvp_probe.Health
module Sfprogram = Amsvp_sf.Sfprogram
module Stimulus = Amsvp_util.Stimulus
module Trace = Amsvp_util.Trace
module Circuits = Amsvp_netlist.Circuits
module Engine = Amsvp_mna.Engine
module Wrap = Amsvp_sysc.Wrap

let y = Expr.potential "y" "gnd"
let u = Expr.signal "u"

let expect_invalid name f =
  Alcotest.(check bool) name true
    (try
       ignore (f ());
       false
     with Invalid_argument _ -> true)

(* ---- Tap ring buffers ---- *)

let feed set samples =
  List.iteri
    (fun i v -> Probe.sample set ~time:(float_of_int i) (fun _ -> v))
    samples

let test_tap_basic () =
  let set = Probe.create () in
  let tap = Probe.tap set y in
  feed set [ 1.0; 2.0; 3.0 ];
  Alcotest.(check int) "seen" 3 (Probe.Tap.seen tap);
  Alcotest.(check int) "count" 3 (Probe.Tap.count tap);
  Alcotest.(check (array (float 0.0))) "values" [| 1.0; 2.0; 3.0 |]
    (Probe.Tap.values tap);
  Alcotest.(check (array (float 0.0))) "times" [| 0.0; 1.0; 2.0 |]
    (Probe.Tap.times tap)

let test_tap_wraparound () =
  (* Capacity 4, 10 samples: only the last 4 survive, oldest first. *)
  let set = Probe.create ~capacity:4 () in
  let tap = Probe.tap set y in
  feed set (List.init 10 (fun i -> float_of_int i));
  Alcotest.(check int) "seen" 10 (Probe.Tap.seen tap);
  Alcotest.(check int) "count" 4 (Probe.Tap.count tap);
  Alcotest.(check (array (float 0.0))) "last 4, oldest first"
    [| 6.0; 7.0; 8.0; 9.0 |]
    (Probe.Tap.values tap)

let test_tap_decimation () =
  (* every=3 over 10 offers retains offers 0,3,6,9. *)
  let set = Probe.create () in
  let tap = Probe.tap set ~every:3 y in
  feed set (List.init 10 (fun i -> float_of_int i));
  Alcotest.(check int) "retained" 4 (Probe.Tap.count tap);
  Alcotest.(check (array (float 0.0))) "decimated" [| 0.0; 3.0; 6.0; 9.0 |]
    (Probe.Tap.values tap)

let test_duplicate_tap_rejected () =
  let set = Probe.create () in
  ignore (Probe.tap set y);
  expect_invalid "duplicate tap name" (fun () -> Probe.tap set y)

let test_invalid_params () =
  expect_invalid "capacity 0" (fun () -> Probe.create ~capacity:0 ());
  expect_invalid "every 0" (fun () -> Probe.create ~every:0 ())

(* ---- Export ---- *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0

let test_vcd_well_formed () =
  let set = Probe.create () in
  ignore (Probe.tap set y);
  ignore (Probe.tap set u);
  feed set [ 0.0; 0.5; 0.5; 1.0 ];
  let vcd = Probe.to_vcd set in
  let has s = Alcotest.(check bool) s true (contains vcd s) in
  has "$timescale";
  has "$enddefinitions";
  has "V(y,gnd)";
  has "u";
  (* Timestamps strictly increase. *)
  let last = ref (-1) in
  String.split_on_char '\n' vcd
  |> List.iter (fun line ->
         if String.length line > 1 && line.[0] = '#' then begin
           let t = int_of_string (String.sub line 1 (String.length line - 1)) in
           Alcotest.(check bool) "monotonic timestamps" true (t > !last);
           last := t
         end)

let test_vcd_empty_rejected () =
  expect_invalid "empty probe set" (fun () -> Probe.to_vcd (Probe.create ()))

let test_csv_long_format () =
  let set = Probe.create () in
  ignore (Probe.tap set y);
  feed set [ 1.5; 2.5 ];
  let lines =
    String.split_on_char '\n' (String.trim (Probe.to_csv set))
  in
  Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
  Alcotest.(check string) "header" "signal,time,value" (List.hd lines);
  Alcotest.(check bool) "row shape" true
    (String.length (List.nth lines 1) > 0
    && String.sub (List.nth lines 1) 0 9 = "V(y,gnd),")

(* ---- Health monitors ---- *)

let test_health_stats () =
  let m = Health.create "sig" in
  List.iteri
    (fun i v -> Health.observe m ~time:(float_of_int i) v)
    [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "samples" 4 (Health.samples m);
  Alcotest.(check (float 1e-12)) "min" 1.0 (Health.min_value m);
  Alcotest.(check (float 1e-12)) "max" 4.0 (Health.max_value m);
  Alcotest.(check (float 1e-12)) "mean" 2.5 (Health.mean m);
  Alcotest.(check (float 1e-12)) "variance" 1.25 (Health.variance m);
  Alcotest.(check (float 1e-12)) "rms"
    (sqrt ((1.0 +. 4.0 +. 9.0 +. 16.0) /. 4.0))
    (Health.rms m);
  Alcotest.(check bool) "healthy" true (Health.healthy m)

let test_health_nan_watchdog () =
  let m = Health.create "sig" in
  Health.observe m ~time:0.0 1.0;
  Health.observe m ~time:1.0 nan;
  Health.observe m ~time:2.0 infinity;
  (match Health.issues m with
  | [ { Health.kind = Health.Nan_or_inf; time; _ } ] ->
      Alcotest.(check (float 0.0)) "first offending time" 1.0 time
  | _ -> Alcotest.fail "expected exactly one nan issue");
  (* NaN did not poison the aggregates. *)
  Alcotest.(check (float 1e-12)) "mean over finite" 1.0 (Health.mean m);
  Alcotest.(check bool) "unhealthy" false (Health.healthy m)

let test_health_amplitude () =
  let config =
    { Health.default_config with amplitude_limit = Some 10.0 }
  in
  let m = Health.create ~config "sig" in
  Health.observe m ~time:0.0 9.0;
  Health.observe m ~time:1.0 (-11.0);
  match Health.issues m with
  | [ { Health.kind = Health.Amplitude; time; value } ] ->
      Alcotest.(check (float 0.0)) "time" 1.0 time;
      Alcotest.(check (float 0.0)) "value" (-11.0) value
  | _ -> Alcotest.fail "expected one amplitude issue"

let test_health_stuck () =
  let config = { Health.default_config with stuck_after = Some 3 } in
  let m = Health.create ~config "sig" in
  Health.observe m ~time:0.0 1.0;
  Health.observe m ~time:1.0 2.0;
  Health.observe m ~time:2.0 2.0;
  Alcotest.(check bool) "two repeats fine" true (Health.healthy m);
  Health.observe m ~time:3.0 2.0;
  match Health.issues m with
  | [ { Health.kind = Health.Stuck; time; _ } ] ->
      Alcotest.(check (float 0.0)) "fires on 3rd repeat" 3.0 time
  | _ -> Alcotest.fail "expected one stuck issue"

let test_health_stuck_edges () =
  let config = { Health.default_config with stuck_after = Some 3 } in
  (* Signed zero: 0.0 and -0.0 compare equal under (=), so a signal
     flipping between them is still flat-lined and must fire. *)
  let m = Health.create ~config "sig" in
  Health.observe m ~time:0.0 0.0;
  Health.observe m ~time:1.0 (-0.0);
  Health.observe m ~time:2.0 0.0;
  (match Health.issues m with
  | [ { Health.kind = Health.Stuck; time; _ } ] ->
      Alcotest.(check (float 0.0)) "signed zeros count as one level" 2.0 time
  | _ -> Alcotest.fail "expected a stuck issue across signed zeros");
  (* A NaN sample is the NaN watchdog's business: it must neither
     extend nor reset the flat-line run it interrupts. *)
  let m2 = Health.create ~config "sig" in
  Health.observe m2 ~time:0.0 2.0;
  Health.observe m2 ~time:1.0 2.0;
  Health.observe m2 ~time:2.0 nan;
  Health.observe m2 ~time:3.0 2.0;
  (match Health.issues m2 with
  | [
   { Health.kind = Health.Nan_or_inf; _ };
   { Health.kind = Health.Stuck; time; _ };
  ] ->
      Alcotest.(check (float 0.0)) "run survives the NaN gap" 3.0 time
  | l -> Alcotest.failf "expected nan then stuck, got %d issue(s)"
           (List.length l));
  (* Both watchdogs latch: a longer flat-line with more NaN holes still
     reports each kind exactly once. *)
  Health.observe m2 ~time:4.0 nan;
  Health.observe m2 ~time:5.0 2.0;
  Alcotest.(check int) "one issue per kind" 2 (List.length (Health.issues m2))

let test_health_nrmse_budget () =
  let config =
    { Health.default_config with nrmse_budget = Some 0.1; nrmse_warmup = 2 }
  in
  let m = Health.create ~config "sig" in
  (* Perfect tracking through warm-up and beyond: healthy. *)
  for i = 0 to 9 do
    let v = float_of_int i in
    Health.observe_ref m ~time:v ~value:v ~reference:v
  done;
  Alcotest.(check bool) "tracking" true (Health.healthy m);
  (match Health.nrmse m with
  | Some e -> Alcotest.(check (float 1e-12)) "zero error" 0.0 e
  | None -> Alcotest.fail "nrmse expected");
  (* A diverging signal breaches the 10% budget. *)
  let m2 = Health.create ~config "sig" in
  for i = 0 to 9 do
    let v = float_of_int i in
    Health.observe_ref m2 ~time:v ~value:(v +. 5.0) ~reference:v
  done;
  match Health.issues m2 with
  | [ { Health.kind = Health.Nrmse_budget; _ } ] -> ()
  | _ -> Alcotest.fail "expected an nrmse-budget issue"

let test_health_config_validation () =
  expect_invalid "stuck_after 1" (fun () ->
      Health.create
        ~config:{ Health.default_config with stuck_after = Some 1 }
        "s");
  expect_invalid "negative amplitude" (fun () ->
      Health.create
        ~config:{ Health.default_config with amplitude_limit = Some (-1.0) }
        "s")

(* ---- Observe hook on the runners ---- *)

let test_observe_through_runner () =
  (* y_t = u_t over 10 steps of dt=1: the tap sees the initial sample
     plus one sample per step, all equal to the stimulus. *)
  let p =
    Sfprogram.make ~name:"t" ~inputs:[ "u" ] ~outputs:[ y ]
      ~assignments:[ { Sfprogram.target = y; expr = Expr.var u } ]
      ~dt:1.0
  in
  let set = Probe.create () in
  let tap = Probe.tap set y in
  let r = Sfprogram.Runner.create p in
  let trace =
    Sfprogram.Runner.run r
      ~stimuli:[| Stimulus.constant 2.0 |]
      ~t_stop:10.0 ~observe:(Probe.observer set) ()
  in
  Alcotest.(check int) "one sample per trace point" (Trace.length trace)
    (Probe.Tap.count tap);
  (* The t=0 sample is the runner's initial state (0); every stepped
     sample equals the constant stimulus. *)
  Array.iteri
    (fun i v ->
      Alcotest.(check (float 0.0)) "stimulus value"
        (if i = 0 then 0.0 else 2.0)
        v)
    (Probe.Tap.values tap)

let test_observe_through_spice_engine () =
  (* The MNA reader evaluates any circuit quantity: tap both the output
     potential and the input-source potential of the rectifier. *)
  let tc = Option.get (Circuits.by_name "RECT") in
  let set = Probe.create () in
  let out_tap = Probe.tap set tc.Circuits.output in
  let in_tap = Probe.tap set (Expr.potential "in" "gnd") in
  let res =
    Engine.spice_like tc.Circuits.circuit ~inputs:tc.Circuits.stimuli
      ~output:tc.Circuits.output ~dt:1e-5 ~t_stop:1e-3
      ~observe:(Probe.observer set)
  in
  let n = Trace.length res.Engine.trace in
  Alcotest.(check int) "out tap follows the trace" n
    (Probe.Tap.count out_tap);
  Alcotest.(check int) "in tap too" n (Probe.Tap.count in_tap);
  (* The tapped output equals the recorded trace sample for sample. *)
  let vals = Probe.Tap.values out_tap in
  Array.iteri
    (fun i v ->
      Alcotest.(check (float 1e-12)) "tap = trace" (Trace.value res.Engine.trace i) v)
    vals;
  (* The input tap saw the sine swing both ways. *)
  let swing =
    Array.fold_left (fun acc v -> max acc (abs_float v)) 0.0
      (Probe.Tap.values in_tap)
  in
  Alcotest.(check bool) "input amplitude" true (swing > 0.5)

let test_observe_through_eln () =
  let tc = Option.get (Circuits.by_name "RC1") in
  let set = Probe.create () in
  let tap = Probe.tap set tc.Circuits.output in
  let res =
    Wrap.run_eln tc.Circuits.circuit ~inputs:tc.Circuits.stimuli
      ~output:tc.Circuits.output ~dt:1e-5 ~t_stop:1e-3
      ~observe:(Probe.observer set)
  in
  Alcotest.(check int) "tap follows the trace"
    (Trace.length res.Wrap.trace)
    (Probe.Tap.count tap)

let test_watch_via_observer () =
  (* A monitor attached to the probe set is fed by the same hook. *)
  let p =
    Sfprogram.make ~name:"t" ~inputs:[ "u" ] ~outputs:[ y ]
      ~assignments:[ { Sfprogram.target = y; expr = Expr.var u } ]
      ~dt:1.0
  in
  let set = Probe.create () in
  let mon =
    Probe.watch set
      ~config:{ Health.default_config with amplitude_limit = Some 1.5 }
      y
  in
  let r = Sfprogram.Runner.create p in
  ignore
    (Sfprogram.Runner.run r
       ~stimuli:[| Stimulus.constant 2.0 |]
       ~t_stop:5.0 ~observe:(Probe.observer set) ());
  match Health.issues mon with
  | [ { Health.kind = Health.Amplitude; _ } ] -> ()
  | _ -> Alcotest.fail "expected the amplitude watchdog to fire"

let () =
  Alcotest.run "probe"
    [
      ( "taps",
        [
          Alcotest.test_case "basic" `Quick test_tap_basic;
          Alcotest.test_case "wrap-around" `Quick test_tap_wraparound;
          Alcotest.test_case "decimation" `Quick test_tap_decimation;
          Alcotest.test_case "duplicate rejected" `Quick
            test_duplicate_tap_rejected;
          Alcotest.test_case "invalid params" `Quick test_invalid_params;
        ] );
      ( "export",
        [
          Alcotest.test_case "vcd well-formed" `Quick test_vcd_well_formed;
          Alcotest.test_case "vcd empty rejected" `Quick
            test_vcd_empty_rejected;
          Alcotest.test_case "csv long format" `Quick test_csv_long_format;
        ] );
      ( "health",
        [
          Alcotest.test_case "streaming stats" `Quick test_health_stats;
          Alcotest.test_case "nan watchdog" `Quick test_health_nan_watchdog;
          Alcotest.test_case "amplitude" `Quick test_health_amplitude;
          Alcotest.test_case "stuck-at" `Quick test_health_stuck;
          Alcotest.test_case "stuck-at edges" `Quick test_health_stuck_edges;
          Alcotest.test_case "nrmse budget" `Quick test_health_nrmse_budget;
          Alcotest.test_case "config validation" `Quick
            test_health_config_validation;
        ] );
      ( "observe hook",
        [
          Alcotest.test_case "signal-flow runner" `Quick
            test_observe_through_runner;
          Alcotest.test_case "spice engine" `Quick
            test_observe_through_spice_engine;
          Alcotest.test_case "eln kernel" `Quick test_observe_through_eln;
          Alcotest.test_case "watch via observer" `Quick
            test_watch_via_observer;
        ] );
    ]
